package filter

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/storage"
)

func randSets(seed int64, n, maxCard, dim int) [][][]float64 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][][]float64, n)
	for i := range sets {
		card := 1 + rng.Intn(maxCard)
		sets[i] = make([][]float64, card)
		for j := range sets[i] {
			v := make([]float64, dim)
			for c := range v {
				v[c] = rng.NormFloat64() * 5
			}
			sets[i][j] = v
		}
	}
	return sets
}

func exactAll(sets [][][]float64, q [][]float64) []index.Neighbor {
	var all []index.Neighbor
	for i, s := range sets {
		d := dist.MatchingDistance(q, s, dist.L2, dist.WeightNorm)
		all = append(all, index.Neighbor{ID: i, Dist: d})
	}
	sort.Sort(index.ByDistance(all))
	return all
}

func TestFilterKNNExact(t *testing.T) {
	const K, D = 7, 6
	sets := randSets(1, 300, K, D)
	ix := New(Config{K: K, Dim: D})
	for i, s := range sets {
		ix.Add(s, i)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		q := sets[rng.Intn(len(sets))]
		got := ix.KNN(q, 10)
		want := exactAll(sets, q)[:10]
		if len(got) != 10 {
			t.Fatalf("got %d results", len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: filter %v, exact %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestFilterRangeExact(t *testing.T) {
	const K, D = 5, 6
	sets := randSets(3, 250, K, D)
	ix := New(Config{K: K, Dim: D})
	for i, s := range sets {
		ix.Add(s, i)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		q := sets[rng.Intn(len(sets))]
		eps := 5 + rng.Float64()*20
		got := ix.Range(q, eps)
		want := map[int]float64{}
		for i, s := range sets {
			if d := dist.MatchingDistance(q, s, dist.L2, dist.WeightNorm); d <= eps {
				want[i] = d
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for _, nb := range got {
			if d, ok := want[nb.ID]; !ok || math.Abs(d-nb.Dist) > 1e-9 {
				t.Fatalf("bad result %v", nb)
			}
		}
	}
}

func TestFilterReducesRefinements(t *testing.T) {
	// The selling point: far fewer exact evaluations than objects.
	const K, D = 7, 6
	sets := randSets(5, 1000, K, D)
	ix := New(Config{K: K, Dim: D})
	for i, s := range sets {
		ix.Add(s, i)
	}
	ix.ResetRefinements()
	const queries = 10
	for q := 0; q < queries; q++ {
		ix.KNN(sets[q*31], 10)
	}
	perQuery := float64(ix.Refinements()) / queries
	if perQuery >= float64(len(sets)) {
		t.Errorf("filter refined %.0f objects per query out of %d (no filtering)",
			perQuery, len(sets))
	}
	t.Logf("refinements per 10-nn query: %.1f of %d objects", perQuery, len(sets))
}

func TestFilterChargesIO(t *testing.T) {
	var tr storage.Tracker
	const K, D = 7, 6
	sets := randSets(6, 200, K, D)
	ix := New(Config{K: K, Dim: D, Tracker: &tr})
	for i, s := range sets {
		ix.Add(s, i)
	}
	tr.Reset()
	ix.KNN(sets[0], 5)
	if tr.PageAccesses() == 0 || tr.BytesRead() == 0 {
		t.Error("query did not charge I/O")
	}
}

func TestFilterEmptyAndEdgeCases(t *testing.T) {
	ix := New(Config{K: 3, Dim: 6})
	if got := ix.KNN([][]float64{{1, 2, 3, 4, 5, 6}}, 5); got != nil {
		t.Error("empty index should return nil")
	}
	if got := ix.Range([][]float64{{1, 2, 3, 4, 5, 6}}, 10); len(got) != 0 {
		t.Error("empty index range should be empty")
	}
	ix.Add([][]float64{{1, 2, 3, 4, 5, 6}}, 42)
	if got := ix.KNN(nil, 1); len(got) != 1 || got[0].ID != 42 {
		t.Errorf("empty query set knn = %v", got)
	}
	if got := ix.KNN([][]float64{{1, 2, 3, 4, 5, 6}}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestFilterCardinalityOverflowPanics(t *testing.T) {
	ix := New(Config{K: 1, Dim: 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ix.Add([][]float64{{1, 2}, {3, 4}}, 0)
}

func TestFilterInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{K: 0, Dim: 6})
}

func TestFilterCustomOmega(t *testing.T) {
	// Using a non-zero ω with the matching w_ω must keep results exact.
	const K, D = 4, 3
	omega := []float64{100, 100, 100}
	sets := randSets(8, 150, K, D)
	ix := New(Config{
		K: K, Dim: D,
		Omega:  omega,
		Weight: dist.WeightNormTo(omega),
	})
	for i, s := range sets {
		ix.Add(s, i)
	}
	q := sets[7]
	got := ix.KNN(q, 5)
	var all []index.Neighbor
	for i, s := range sets {
		d := dist.MatchingDistance(q, s, dist.L2, dist.WeightNormTo(omega))
		all = append(all, index.Neighbor{ID: i, Dist: d})
	}
	sort.Sort(index.ByDistance(all))
	for i := range got {
		if math.Abs(got[i].Dist-all[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, all[i].Dist)
		}
	}
}
