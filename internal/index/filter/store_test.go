package filter

import (
	"math/rand"
	"testing"

	"github.com/voxset/voxset/internal/vectorset"
)

// memStore is the simplest SetStore: everything in heap slices.
type memStore struct {
	sets  []vectorset.Flat
	cents [][]float64
}

func (s *memStore) Len() int                 { return len(s.sets) }
func (s *memStore) At(i int) vectorset.Flat  { return s.sets[i] }
func (s *memStore) Centroid(i int) []float64 { return s.cents[i] }

func storeCorpus(t *testing.T, n int, cfg Config) (*memStore, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(0xbead))
	st := &memStore{}
	ids := make([]int, n)
	omega := cfg.Omega
	if omega == nil {
		omega = make([]float64, cfg.Dim)
	}
	for i := 0; i < n; i++ {
		card := 1 + rng.Intn(cfg.K)
		data := make([]float64, card*cfg.Dim)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		f := vectorset.Flat{Data: data, Card: card, Dim: cfg.Dim}
		st.sets = append(st.sets, f)
		st.cents = append(st.cents, f.Centroid(cfg.K, omega))
		ids[i] = 10 + i*2
	}
	return st, ids
}

// TestNewBulkStoreParity asserts that a store-backed index — in-memory
// STR and external STR alike — answers KNN and range queries exactly
// like NewBulk over the same sets, at one worker and several.
func TestNewBulkStoreParity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := Config{K: 8, Dim: 4, Workers: workers}
		st, ids := storeCorpus(t, 600, cfg)
		ref := NewBulk(cfg, st.sets, ids, st.cents)

		variants := map[string]StoreBuildOptions{
			"in-memory": {},
			"external":  {External: true, TmpDir: t.TempDir(), RunSize: 64},
		}
		for name, opt := range variants {
			ix, err := NewBulkStore(cfg, st, ids, opt)
			if err != nil {
				t.Fatal(err)
			}
			if ix.Len() != ref.Len() {
				t.Fatalf("%s/w=%d: Len = %d, want %d", name, workers, ix.Len(), ref.Len())
			}
			rng := rand.New(rand.NewSource(77))
			for qi := 0; qi < 20; qi++ {
				q := make([][]float64, 1+rng.Intn(cfg.K))
				for i := range q {
					q[i] = make([]float64, cfg.Dim)
					for j := range q[i] {
						q[i][j] = rng.NormFloat64()
					}
				}
				a, b := ref.KNN(q, 7), ix.KNN(q, 7)
				if len(a) != len(b) {
					t.Fatalf("%s/w=%d query %d: %d vs %d knn results", name, workers, qi, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s/w=%d query %d knn[%d]: %+v vs %+v", name, workers, qi, i, a[i], b[i])
					}
				}
				ra, rb := ref.Range(q, 3.0), ix.Range(q, 3.0)
				if len(ra) != len(rb) {
					t.Fatalf("%s/w=%d query %d: %d vs %d range results", name, workers, qi, len(ra), len(rb))
				}
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("%s/w=%d query %d range[%d]: %+v vs %+v", name, workers, qi, i, ra[i], rb[i])
					}
				}
			}
		}
	}
}

func TestNewBulkStoreEmptyAndImmutable(t *testing.T) {
	cfg := Config{K: 4, Dim: 3}
	ix, err := NewBulkStore(cfg, &memStore{}, nil, StoreBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("empty store index has Len %d", ix.Len())
	}
	st, ids := storeCorpus(t, 5, cfg)
	ix, err = NewBulkStore(cfg, st, ids, StoreBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a store-backed index should panic")
		}
	}()
	ix.Add([][]float64{{1, 2, 3}}, 999)
}
