package filter

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildPair indexes the same dataset into a sequential and a parallel
// index.
func buildPair(t *testing.T, sets [][][]float64, k, dim, workers int) (seq, par *Index) {
	t.Helper()
	seq = New(Config{K: k, Dim: dim, Workers: 1})
	par = New(Config{K: k, Dim: dim, Workers: workers})
	for i, s := range sets {
		seq.Add(s, i)
		par.Add(s, i)
	}
	return seq, par
}

// TestParallelKNNMatchesSequential pins the engine's core guarantee:
// identical k-nn results at any worker count, on several seeded
// datasets.
func TestParallelKNNMatchesSequential(t *testing.T) {
	const K, D = 7, 6
	for _, seed := range []int64{1, 2, 3} {
		sets := randSets(seed, 300, K, D)
		seq, par := buildPair(t, sets, K, D, 8)
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 10; trial++ {
			q := sets[rng.Intn(len(sets))]
			k := 1 + rng.Intn(20)
			got := par.KNN(q, k)
			want := seq.KNN(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d k=%d: parallel %v != sequential %v",
					seed, trial, k, got, want)
			}
		}
	}
}

// TestParallelRangeMatchesSequential does the same for ε-range queries.
func TestParallelRangeMatchesSequential(t *testing.T) {
	const K, D = 5, 6
	for _, seed := range []int64{1, 2, 3} {
		sets := randSets(seed, 250, K, D)
		seq, par := buildPair(t, sets, K, D, 8)
		rng := rand.New(rand.NewSource(seed + 200))
		for trial := 0; trial < 10; trial++ {
			q := sets[rng.Intn(len(sets))]
			eps := 5 + rng.Float64()*20
			got := par.Range(q, eps)
			want := seq.Range(q, eps)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d trial %d eps=%v: parallel %v != sequential %v",
					seed, trial, eps, got, want)
			}
		}
	}
}

// TestKNNTieBreakDeterministic indexes the same vector set under many
// ids, so every candidate is at the same distance from the query: the
// k-nn must return the lowest ids, in both engines.
func TestKNNTieBreakDeterministic(t *testing.T) {
	const K, D = 3, 6
	set := [][]float64{{1, 2, 3, 4, 5, 6}, {2, 3, 4, 5, 6, 7}}
	sets := make([][][]float64, 20)
	for i := range sets {
		sets[i] = set
	}
	seq, par := buildPair(t, sets, K, D, 4)
	for name, ix := range map[string]*Index{"sequential": seq, "parallel": par} {
		got := ix.KNN(set, 5)
		if len(got) != 5 {
			t.Fatalf("%s: got %d results", name, len(got))
		}
		for i, nb := range got {
			if nb.ID != i {
				t.Errorf("%s: rank %d has id %d, want %d (lowest ids win ties)",
					name, i, nb.ID, i)
			}
			if nb.Dist != 0 {
				t.Errorf("%s: rank %d dist = %v, want 0", name, i, nb.Dist)
			}
		}
	}
}

// TestParallelRefinementCounter checks the atomic counter survives
// concurrent refinement: it must count at least the sequential optimum
// and at most the candidate total.
func TestParallelRefinementCounter(t *testing.T) {
	const K, D = 7, 6
	sets := randSets(9, 400, K, D)
	_, par := buildPair(t, sets, K, D, 8)
	par.ResetRefinements()
	par.KNN(sets[0], 10)
	r := par.Refinements()
	if r < 10 {
		t.Errorf("10-nn refined only %d objects", r)
	}
	if r > int64(len(sets)) {
		t.Errorf("refined %d objects out of %d", r, len(sets))
	}
}
