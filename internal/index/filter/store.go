package filter

import (
	"fmt"

	"github.com/voxset/voxset/internal/index/xtree"
	"github.com/voxset/voxset/internal/vectorset"
)

// SetStore is a read-only source of vector sets that the index refines
// against in place, instead of copying every set into its simulated
// paged file — the contract a memory-mapped snapshot satisfies
// (snapshot.PagedReader). Implementations must be safe for concurrent
// At/Centroid calls and are responsible for their own integrity checks
// and I/O cost accounting (the mmap store charges the tracker per page
// actually touched, replacing the paged file's simulated charges).
type SetStore interface {
	// Len returns the number of stored sets.
	Len() int
	// At returns the i-th set (insertion order). The result must remain
	// valid for the lifetime of the store; the index never mutates it.
	At(i int) vectorset.Flat
	// Centroid returns the extended centroid of the i-th set, consistent
	// with the index configuration's K and ω.
	Centroid(i int) []float64
}

// StoreBuildOptions tunes NewBulkStore's index construction.
type StoreBuildOptions struct {
	// External STR-sorts the centroids out of core (disk runs + k-way
	// merge) instead of in memory — the million-object build path where
	// the sort working set must stay bounded.
	External bool
	// TmpDir hosts external-sort spill files (system temp dir if empty).
	TmpDir string
	// RunSize bounds the in-memory sort run (xtree default if zero).
	RunSize int
}

// NewBulkStore builds a filter index whose refinement step reads
// straight from store: no per-object re-encoding, no second copy of the
// database in the paged file. ids[i] is the external object id of
// store.At(i). The returned index answers queries identically to
// NewBulk over the same sets (same exact refinement, same (distance,
// id) order); it is immutable — Add panics.
func NewBulkStore(cfg Config, store SetStore, ids []int, opt StoreBuildOptions) (*Index, error) {
	n := store.Len()
	if n != len(ids) {
		return nil, fmt.Errorf("filter: store holds %d sets but %d ids given", n, len(ids))
	}
	ix := New(cfg)
	ix.store = store
	ix.ids = ids
	ix.byID = make(map[int]int, n)
	for i, id := range ids {
		ix.byID[id] = i
	}
	ix.cents = make([][]float64, n)
	for i := range ix.cents {
		ix.cents[i] = store.Centroid(i)
	}
	if n == 0 {
		return ix, nil
	}
	if opt.External {
		i := 0
		tree, err := xtree.BulkLoadExternal(cfg.Dim, n, func(p []float64) (int, error) {
			copy(p, ix.cents[i])
			i++
			return i - 1, nil
		}, xtree.ExternalConfig{
			Config:  xtree.Config{Tracker: ix.cfg.Tracker, PageSize: ix.cfg.PageSize},
			TmpDir:  opt.TmpDir,
			RunSize: opt.RunSize,
		})
		if err != nil {
			return nil, err
		}
		ix.tree = tree
		return ix, nil
	}
	internal := make([]int, n)
	for i := range internal {
		internal[i] = i
	}
	ix.tree = xtree.BulkLoad(ix.cents, internal, xtree.Config{
		Tracker:  ix.cfg.Tracker,
		PageSize: ix.cfg.PageSize,
	})
	return ix, nil
}
