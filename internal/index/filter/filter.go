// Package filter implements the paper's filter/refinement query pipeline
// for vector-set data (§4.3): the 6-dimensional extended centroids of all
// vector sets are indexed in an X-tree; k·‖C(X)−C(q)‖₂ lower-bounds the
// minimal matching distance (Lemma 2), so
//
//   - ε-range queries refine only objects whose centroid lies within
//     ε/k of the query centroid (Korn et al. [19]), and
//   - k-nn queries use the optimal multi-step algorithm of Seidl &
//     Kriegel [29]: rank candidates by filter distance, refine with the
//     exact matching distance, stop when the next filter distance exceeds
//     the current k-th exact distance.
//
// Refinement fetches the vector set from a simulated paged file, charging
// the shared storage tracker, exactly like the paper's Table 2 setup.
package filter

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/index/xtree"
	"github.com/voxset/voxset/internal/storage"
	"github.com/voxset/voxset/internal/vectorset"
)

// Config tunes the pipeline.
type Config struct {
	// K is the maximum vector set cardinality (the paper's number of
	// covers k); required.
	K int
	// Dim is the vector dimension (6 for cover features); required.
	Dim int
	// Ground is the ground distance (dist.L2 if nil).
	Ground dist.Func
	// Weight is the unmatched-element weight function (dist.WeightNorm,
	// i.e. ω = 0, if nil).
	Weight dist.WeightFunc
	// Omega is the centroid padding vector (zero vector if nil). It must
	// be consistent with Weight for the lower bound to hold.
	Omega []float64
	// PageSize for the simulated vector-set file (storage.DefaultPageSize
	// if zero).
	PageSize int
	// Tracker is charged for X-tree node accesses and vector-set record
	// reads (optional).
	Tracker *storage.Tracker
}

// Index is a filter/refinement index over vector sets.
type Index struct {
	cfg   Config
	omega []float64
	tree  *xtree.Tree
	file  *storage.PagedFile
	recs  []int // record id per object insertion order
	ids   []int // object id per insertion order
	byID  map[int]int

	matcher     *dist.Matcher
	refinements int64
}

// New returns an empty filter index.
func New(cfg Config) *Index {
	if cfg.K <= 0 || cfg.Dim <= 0 {
		panic(fmt.Sprintf("filter: K (%d) and Dim (%d) must be positive", cfg.K, cfg.Dim))
	}
	if cfg.Ground == nil {
		cfg.Ground = dist.L2
	}
	if cfg.Weight == nil {
		cfg.Weight = dist.WeightNorm
	}
	omega := cfg.Omega
	if omega == nil {
		omega = make([]float64, cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	return &Index{
		cfg:     cfg,
		omega:   omega,
		tree:    xtree.New(cfg.Dim, xtree.Config{Tracker: cfg.Tracker, PageSize: cfg.PageSize}),
		file:    storage.NewPagedFile(cfg.PageSize, cfg.Tracker),
		byID:    map[int]int{},
		matcher: dist.NewMatcher(cfg.Ground, cfg.Weight),
	}
}

// Len returns the number of indexed vector sets.
func (ix *Index) Len() int { return len(ix.ids) }

// Refinements returns the cumulative number of exact distance
// evaluations performed by queries (the filter's selectivity measure).
func (ix *Index) Refinements() int64 { return ix.refinements }

// ResetRefinements zeroes the refinement counter.
func (ix *Index) ResetRefinements() { ix.refinements = 0 }

// Add indexes the vector set under the given object id.
func (ix *Index) Add(set [][]float64, id int) {
	vs := vectorset.New(set)
	if vs.Card() > ix.cfg.K {
		panic(fmt.Sprintf("filter: set cardinality %d exceeds K = %d", vs.Card(), ix.cfg.K))
	}
	c := vs.Centroid(ix.cfg.K, ix.omega)
	ix.tree.Insert(c, len(ix.ids))
	var buf bytes.Buffer
	if _, err := vs.WriteTo(&buf); err != nil {
		panic(fmt.Sprintf("filter: serializing vector set: %v", err))
	}
	ix.recs = append(ix.recs, ix.file.Append(buf.Bytes()))
	ix.ids = append(ix.ids, id)
	ix.byID[id] = len(ix.ids) - 1
}

// fetch reads the vector set of the object with internal index i from the
// paged file (charging the tracker) and returns its vectors.
func (ix *Index) fetch(i int) [][]float64 {
	rec := ix.file.Get(ix.recs[i])
	var vs vectorset.Set
	if _, err := vs.ReadFrom(bytes.NewReader(rec)); err != nil {
		panic(fmt.Sprintf("filter: corrupt vector set record %d: %v", i, err))
	}
	return vs.Vectors
}

func (ix *Index) exact(q [][]float64, i int) float64 {
	ix.refinements++
	return ix.matcher.Distance(q, ix.fetch(i))
}

// Range returns all objects whose minimal matching distance to q is at
// most eps, in distance order.
func (ix *Index) Range(q [][]float64, eps float64) []index.Neighbor {
	cq := vectorset.New(q).Centroid(ix.cfg.K, ix.omega)
	// Lemma 2: dist_mm ≤ eps requires ‖C(X)−C(q)‖ ≤ eps/k.
	cands := ix.tree.Range(cq, eps/float64(ix.cfg.K))
	var out []index.Neighbor
	for _, c := range cands {
		if d := ix.exact(q, c.ID); d <= eps {
			out = append(out, index.Neighbor{ID: ix.ids[c.ID], Dist: d})
		}
	}
	sort.Sort(index.ByDistance(out))
	return out
}

// resultHeap is a max-heap of current k best exact neighbors.
type resultHeap []index.Neighbor

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(index.Neighbor)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the k nearest neighbors of q under the minimal matching
// distance using the optimal multi-step algorithm: it performs the
// minimum possible number of exact distance evaluations for the given
// filter (Seidl & Kriegel).
func (ix *Index) KNN(q [][]float64, k int) []index.Neighbor {
	if k <= 0 || ix.Len() == 0 {
		return nil
	}
	cq := vectorset.New(q).Centroid(ix.cfg.K, ix.omega)
	ranking := ix.tree.NewRanking(cq)
	var results resultHeap
	for {
		cand, ok := ranking.Next()
		if !ok {
			break
		}
		filterDist := cand.Dist * float64(ix.cfg.K)
		if len(results) == k && filterDist > results[0].Dist {
			break // no unseen object can beat the current k-th distance
		}
		d := ix.exact(q, cand.ID)
		if len(results) < k {
			heap.Push(&results, index.Neighbor{ID: ix.ids[cand.ID], Dist: d})
		} else if d < results[0].Dist {
			results[0] = index.Neighbor{ID: ix.ids[cand.ID], Dist: d}
			heap.Fix(&results, 0)
		}
	}
	out := make([]index.Neighbor, len(results))
	copy(out, results)
	sort.Sort(index.ByDistance(out))
	return out
}
