// Package filter implements the paper's filter/refinement query pipeline
// for vector-set data (§4.3): the 6-dimensional extended centroids of all
// vector sets are indexed in an X-tree; k·‖C(X)−C(q)‖₂ lower-bounds the
// minimal matching distance (Lemma 2), so
//
//   - ε-range queries refine only objects whose centroid lies within
//     ε/k of the query centroid (Korn et al. [19]), and
//   - k-nn queries use the optimal multi-step algorithm of Seidl &
//     Kriegel [29]: rank candidates by filter distance, refine with the
//     exact matching distance, stop when the next filter distance exceeds
//     the current k-th exact distance.
//
// Refinement fetches the vector set from a simulated paged file, charging
// the shared storage tracker, exactly like the paper's Table 2 setup.
//
// With Config.Workers > 1 (or VOXSET_WORKERS set) the refinement step
// runs on a bounded worker pool: range queries split the candidate list,
// k-nn queries refine ranking batches concurrently with a shared atomic
// pruning threshold. Results are identical to the sequential engine at
// any worker count; a parallel k-nn may perform slightly more exact
// evaluations than the sequential optimum (see DESIGN.md §6).
package filter

import (
	"bytes"
	"container/heap"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/index/sketch"
	"github.com/voxset/voxset/internal/index/xtree"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/storage"
	"github.com/voxset/voxset/internal/vectorset"
)

// Config tunes the pipeline.
type Config struct {
	// K is the maximum vector set cardinality (the paper's number of
	// covers k); required.
	K int
	// Dim is the vector dimension (6 for cover features); required.
	Dim int
	// Ground is the ground distance (dist.L2 if nil).
	Ground dist.Func
	// Weight is the unmatched-element weight function (dist.WeightNorm,
	// i.e. ω = 0, if nil).
	Weight dist.WeightFunc
	// Omega is the centroid padding vector (zero vector if nil). It must
	// be consistent with Weight for the lower bound to hold.
	Omega []float64
	// PageSize for the simulated vector-set file (storage.DefaultPageSize
	// if zero).
	PageSize int
	// Tracker is charged for X-tree node accesses and vector-set record
	// reads (optional).
	Tracker *storage.Tracker
	// Workers is the number of refinement workers per query. 0 consults
	// the VOXSET_WORKERS environment variable and defaults to 1
	// (sequential). Query results are identical at any setting.
	Workers int
	// Sketch enables the approximate candidate tier (DESIGN.md §12):
	// per-object sparse binary signatures scanned by Hamming distance
	// instead of the X-tree ranking. nil keeps the index exact-only;
	// KNNApproxFlat/RangeApproxFlat then fall back to the exact engine,
	// which is what makes "approx off" byte-identical by construction.
	Sketch *sketch.Params
	// FastL2 routes refinement through the specialized flat kernel
	// (dist.MatchingDistanceFlat): candidate records decode into a
	// per-workspace flat buffer with zero steady-state allocation and the
	// cost matrix fills in one pass. It is valid — and bit-identical to
	// the generic path — only for the standard configuration, Ground =
	// dist.L2 with Weight = w_ω; New enables it automatically when both
	// Ground and Weight are nil (the defaults are exactly that pair), and
	// callers that pass the pair explicitly (vsdb) set it themselves.
	FastL2 bool
}

// Index is a filter/refinement index over vector sets.
type Index struct {
	cfg   Config
	omega []float64
	tree  *xtree.Tree
	file  *storage.PagedFile
	store SetStore    // non-nil for a NewBulkStore index: refine in place
	recs  []int       // record id per object insertion order
	ids   []int       // object id per insertion order
	cents [][]float64 // extended centroid per insertion order
	byID  map[int]int

	fastL2 bool
	encBuf []byte // reused serialization buffer (Add/NewBulk are caller-serialized)

	workers     int
	refinements atomic.Int64

	// Approximate tier state (sketch.go): the signature table is built
	// lazily on the first approximate query, or adopted from a snapshot
	// via AttachSketches.
	skOnce     sync.Once
	skProj     *sketch.Projector
	skWords    []uint64
	skAttached *sketch.Block
	skCands    atomic.Int64
}

// New returns an empty filter index.
func New(cfg Config) *Index {
	if cfg.K <= 0 || cfg.Dim <= 0 {
		panic(fmt.Sprintf("filter: K (%d) and Dim (%d) must be positive", cfg.K, cfg.Dim))
	}
	if cfg.Ground == nil && cfg.Weight == nil && cfg.Omega == nil {
		// The defaults are exactly the pair the flat kernel specializes:
		// L2 ground distance and WeightNorm ≡ w_ω for the zero-ω default,
		// bit for bit.
		cfg.FastL2 = true
	}
	if cfg.Ground == nil {
		cfg.Ground = dist.L2
	}
	if cfg.Weight == nil {
		cfg.Weight = dist.WeightNorm
	}
	omega := cfg.Omega
	if omega == nil {
		omega = make([]float64, cfg.Dim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	return &Index{
		cfg:     cfg,
		omega:   omega,
		tree:    xtree.New(cfg.Dim, xtree.Config{Tracker: cfg.Tracker, PageSize: cfg.PageSize}),
		file:    storage.NewPagedFile(cfg.PageSize, cfg.Tracker),
		byID:    map[int]int{},
		fastL2:  cfg.FastL2,
		workers: parallel.Workers(cfg.Workers, 1),
	}
}

// Len returns the number of indexed vector sets.
func (ix *Index) Len() int { return len(ix.ids) }

// Workers returns the resolved refinement worker count.
func (ix *Index) Workers() int { return ix.workers }

// Refinements returns the cumulative number of exact distance
// evaluations performed by queries (the filter's selectivity measure).
func (ix *Index) Refinements() int64 { return ix.refinements.Load() }

// ResetRefinements zeroes the refinement counter.
func (ix *Index) ResetRefinements() { ix.refinements.Store(0) }

// Add indexes the vector set under the given object id.
func (ix *Index) Add(set [][]float64, id int) {
	if ix.store != nil {
		panic("filter: a store-backed index is immutable")
	}
	f := vectorset.FlatFromRows(set)
	c := f.Centroid(ix.cfg.K, ix.omega)
	ix.tree.Insert(c, len(ix.ids))
	ix.register(f, id, c)
}

// register appends the set's paged-file record and bookkeeping shared by
// Add and NewBulk (which inserts into the X-tree differently). The
// serialization buffer is reused across calls — the paged file copies
// the record — so a bulk build allocates no per-object encode buffers.
func (ix *Index) register(set vectorset.Flat, id int, centroid []float64) {
	if set.Card > ix.cfg.K {
		panic(fmt.Sprintf("filter: set cardinality %d exceeds K = %d", set.Card, ix.cfg.K))
	}
	ix.encBuf = set.AppendEncode(ix.encBuf[:0])
	ix.recs = append(ix.recs, ix.file.Append(ix.encBuf))
	ix.ids = append(ix.ids, id)
	ix.cents = append(ix.cents, centroid)
	ix.byID[id] = len(ix.ids) - 1
}

// Centroid returns the extended centroid of the i-th indexed set in
// insertion order. The returned slice is owned by the index.
func (ix *Index) Centroid(i int) []float64 { return ix.cents[i] }

// NewBulk builds the index over sets[i] ↦ ids[i] in one pass, STR
// bulk-loading the X-tree instead of inserting iteratively — the static
// build used when opening a persisted snapshot. cents[i], when non-nil,
// supplies precomputed extended centroids (they must match the
// configuration's K and ω; snapshot decoding guarantees this because the
// snapshot stores the centroids the index was saved with). A nil cents
// recomputes them. The result answers queries identically to an index
// built by sequential Add calls.
func NewBulk(cfg Config, sets []vectorset.Flat, ids []int, cents [][]float64) *Index {
	if len(sets) != len(ids) {
		panic(fmt.Sprintf("filter: %d sets but %d ids", len(sets), len(ids)))
	}
	if cents != nil && len(cents) != len(sets) {
		panic(fmt.Sprintf("filter: %d sets but %d centroids", len(sets), len(cents)))
	}
	ix := New(cfg)
	if len(sets) == 0 {
		return ix
	}
	if cents == nil {
		cents = make([][]float64, len(sets))
		for i, set := range sets {
			cents[i] = set.Centroid(ix.cfg.K, ix.omega)
		}
	}
	for i, set := range sets {
		ix.register(set, ids[i], cents[i])
	}
	internal := make([]int, len(sets))
	for i := range internal {
		internal[i] = i
	}
	ix.tree = xtree.BulkLoad(cents, internal, xtree.Config{
		Tracker:  ix.cfg.Tracker,
		PageSize: ix.cfg.PageSize,
	})
	return ix
}

// fetch reads the vector set of the object with internal index i from the
// paged file (charging the tracker) and returns its vectors.
func (ix *Index) fetch(i int) [][]float64 {
	if ix.store != nil {
		return ix.store.At(i).Rows()
	}
	rec := ix.file.Get(ix.recs[i])
	var vs vectorset.Set
	if _, err := vs.ReadFrom(bytes.NewReader(rec)); err != nil {
		panic(fmt.Sprintf("filter: corrupt vector set record %d: %v", i, err))
	}
	return vs.Vectors
}

// fetchFlat decodes the record of internal index i into ws's staging
// buffer: the paged file hands back its stored bytes zero-copy and the
// decode targets ws.Floats, so a steady-state fetch performs no
// allocation. The returned Flat is valid until the workspace's next
// fetchFlat.
func (ix *Index) fetchFlat(ws *dist.Workspace, i int) vectorset.Flat {
	if ix.store != nil {
		// The store serves the set in place (on the mmap path, straight
		// from the page cache): no decode, no copy, no allocation.
		return ix.store.At(i)
	}
	rec := ix.file.Get(ix.recs[i])
	card, dim, err := vectorset.FlatHeader(rec)
	if err != nil {
		panic(fmt.Sprintf("filter: corrupt vector set record %d: %v", i, err))
	}
	f, err := vectorset.DecodeFlatInto(ws.Floats(card*dim), rec)
	if err != nil {
		panic(fmt.Sprintf("filter: corrupt vector set record %d: %v", i, err))
	}
	return f
}

// qview is a query prepared once per query call: the flat face feeds the
// specialized kernel when the index runs FastL2, the row face feeds the
// generic Ground/Weight path otherwise.
type qview struct {
	rows [][]float64
	flat vectorset.Flat
	fast bool
}

func (ix *Index) newQuery(rows [][]float64) (qview, []float64) {
	if ix.fastL2 {
		f := vectorset.FlatFromRows(rows)
		return qview{flat: f, fast: true}, f.Centroid(ix.cfg.K, ix.omega)
	}
	return qview{rows: rows}, vectorset.New(rows).Centroid(ix.cfg.K, ix.omega)
}

func (ix *Index) newQueryFlat(f vectorset.Flat) (qview, []float64) {
	if ix.fastL2 {
		return qview{flat: f, fast: true}, f.Centroid(ix.cfg.K, ix.omega)
	}
	return qview{rows: f.Rows()}, f.Centroid(ix.cfg.K, ix.omega)
}

// exact refines candidate i through the caller's matching workspace. The
// paged file and the refinement counter are safe for concurrent exact
// calls; each worker must hold its own workspace.
func (ix *Index) exact(ws *dist.Workspace, q qview, i int) float64 {
	ix.refinements.Add(1)
	if q.fast {
		return ws.MatchingDistanceFlat(q.flat, ix.fetchFlat(ws, i), ix.omega)
	}
	return ws.MatchingDistance(q.rows, ix.fetch(i), ix.cfg.Ground, ix.cfg.Weight)
}

// Range returns all objects whose minimal matching distance to q is at
// most eps, in (distance, id) order.
func (ix *Index) Range(q [][]float64, eps float64) []index.Neighbor {
	qv, cq := ix.newQuery(q)
	return ix.rangeQuery(qv, cq, eps)
}

// RangeFlat is Range for a query already in the flat layout, skipping
// the per-call conversion (the vsdb query path).
func (ix *Index) RangeFlat(q vectorset.Flat, eps float64) []index.Neighbor {
	qv, cq := ix.newQueryFlat(q)
	return ix.rangeQuery(qv, cq, eps)
}

func (ix *Index) rangeQuery(q qview, cq []float64, eps float64) []index.Neighbor {
	// Lemma 2: dist_mm ≤ eps requires ‖C(X)−C(q)‖ ≤ eps/k.
	cands := ix.tree.Range(cq, eps/float64(ix.cfg.K))
	dists := make([]float64, len(cands))
	workers := min(ix.workers, len(cands))
	parallel.Run(workers, func(w int) {
		ws := dist.GetWorkspace()
		defer dist.PutWorkspace(ws)
		lo, hi := parallel.Chunk(len(cands), max(workers, 1), w)
		for i := lo; i < hi; i++ {
			dists[i] = ix.exact(ws, q, cands[i].ID)
		}
	})
	var out []index.Neighbor
	for i, c := range cands {
		if dists[i] <= eps {
			out = append(out, index.Neighbor{ID: ix.ids[c.ID], Dist: dists[i]})
		}
	}
	index.SortNeighbors(out)
	return out
}

// worseNeighbor reports whether a ranks strictly after b under the
// deterministic (distance, id) result order. It is the single comparison
// used by both the sequential and the parallel k-nn merge, which is what
// makes their outputs identical.
func worseNeighbor(a, b index.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// resultHeap is a max-heap of the current k best exact neighbors: the
// root is the worst retained neighbor under the (distance, id) order.
type resultHeap []index.Neighbor

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return worseNeighbor(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(index.Neighbor)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// offer merges one refined neighbor into the heap under the k budget.
func (h *resultHeap) offer(nb index.Neighbor, k int) {
	if len(*h) < k {
		heap.Push(h, nb)
	} else if worseNeighbor((*h)[0], nb) {
		(*h)[0] = nb
		heap.Fix(h, 0)
	}
}

// KNN returns the k nearest neighbors of q under the minimal matching
// distance using the optimal multi-step algorithm (Seidl & Kriegel):
// candidates are refined in filter-distance order and the walk stops as
// soon as the next filter distance exceeds the current k-th exact
// distance. With more than one worker, ranking batches are refined
// concurrently (see knnParallel); results are identical either way.
func (ix *Index) KNN(q [][]float64, k int) []index.Neighbor {
	if k <= 0 || ix.Len() == 0 {
		return nil
	}
	qv, cq := ix.newQuery(q)
	return ix.knn(qv, cq, k)
}

// KNNFlat is KNN for a query already in the flat layout, skipping the
// per-call conversion (the vsdb query path).
func (ix *Index) KNNFlat(q vectorset.Flat, k int) []index.Neighbor {
	if k <= 0 || ix.Len() == 0 {
		return nil
	}
	qv, cq := ix.newQueryFlat(q)
	return ix.knn(qv, cq, k)
}

func (ix *Index) knn(q qview, cq []float64, k int) []index.Neighbor {
	var results resultHeap
	if ix.workers > 1 {
		results = ix.knnParallel(cq, q, k)
	} else {
		results = ix.knnSequential(cq, q, k)
	}
	out := make([]index.Neighbor, len(results))
	copy(out, results)
	index.SortNeighbors(out)
	return out
}

func (ix *Index) knnSequential(cq []float64, q qview, k int) resultHeap {
	ws := dist.GetWorkspace()
	defer dist.PutWorkspace(ws)
	ranking := ix.tree.NewRanking(cq)
	var results resultHeap
	for {
		cand, ok := ranking.Next()
		if !ok {
			break
		}
		filterDist := cand.Dist * float64(ix.cfg.K)
		if len(results) == k && filterDist > results[0].Dist {
			break // no unseen object can beat the current k-th distance
		}
		d := ix.exact(ws, q, cand.ID)
		results.offer(index.Neighbor{ID: ix.ids[cand.ID], Dist: d}, k)
	}
	return results
}

// knnBatchPerWorker sizes the ranking batches handed to the worker pool:
// workers × this many candidates per round. Larger batches amortize the
// fork/join cost but can overshoot the sequential stopping point by more.
const knnBatchPerWorker = 4

// knnParallel is the concurrent variant of the optimal multi-step k-nn.
// It gathers candidates from the ranking in batches, refines each batch
// on the worker pool, and merges refined distances into the result heap
// in ranking order with the same (distance, id) rule as the sequential
// walk.
//
// Correctness: the batch boundary only ever extends the candidate prefix
// the sequential algorithm would refine (the k-th distance used in the
// stop test monotonically decreases, and the filter distance lower-bounds
// the exact distance), so the refined set is a superset of the sequential
// one; surplus candidates lose against the final k-th distance and cannot
// enter the heap. Workers prune individually against a shared atomic
// threshold — the k-th exact distance after the last merged batch — and
// mark skipped candidates +Inf, which is likewise sound because a filter
// distance above the current k-th exact distance can never be a result.
func (ix *Index) knnParallel(cq []float64, q qview, k int) resultHeap {
	ranking := ix.tree.NewRanking(cq)
	var results resultHeap

	var threshold atomic.Uint64 // Float64bits of the current k-th distance
	threshold.Store(math.Float64bits(math.Inf(1)))

	batchCap := ix.workers * knnBatchPerWorker
	cands := make([]index.Neighbor, 0, batchCap)
	dists := make([]float64, batchCap)
	for {
		cands = cands[:0]
		done := false
		for len(cands) < batchCap {
			cand, ok := ranking.Next()
			if !ok {
				done = true
				break
			}
			filterDist := cand.Dist * float64(ix.cfg.K)
			if len(results) == k && filterDist > results[0].Dist {
				done = true // the ranking is sorted: every later candidate fails too
				break
			}
			cands = append(cands, cand)
		}
		if len(cands) > 0 {
			workers := min(ix.workers, len(cands))
			parallel.Run(workers, func(w int) {
				ws := dist.GetWorkspace()
				defer dist.PutWorkspace(ws)
				lo, hi := parallel.Chunk(len(cands), workers, w)
				for i := lo; i < hi; i++ {
					fd := cands[i].Dist * float64(ix.cfg.K)
					if fd > math.Float64frombits(threshold.Load()) {
						dists[i] = math.Inf(1) // pruned: cannot beat the k-th distance
						continue
					}
					dists[i] = ix.exact(ws, q, cands[i].ID)
				}
			})
			for i, cand := range cands {
				if math.IsInf(dists[i], 1) {
					continue
				}
				results.offer(index.Neighbor{ID: ix.ids[cand.ID], Dist: dists[i]}, k)
			}
			if len(results) == k {
				threshold.Store(math.Float64bits(results[0].Dist))
			}
		}
		if done {
			break
		}
	}
	return results
}
