package filter

import (
	"math/rand"
	"testing"

	"github.com/voxset/voxset/internal/vectorset"
)

// NewBulk (STR bulk load from precomputed centroids, the snapshot-open
// path) must answer every query identically to an index built by
// sequential Add calls.
func TestNewBulkMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, dim, k = 120, 4, 5
	sets := make([][][]float64, n)
	ids := make([]int, n)
	for i := range sets {
		card := 1 + rng.Intn(k)
		set := make([][]float64, card)
		for j := range set {
			set[j] = make([]float64, dim)
			for d := range set[j] {
				set[j][d] = rng.NormFloat64()
			}
		}
		sets[i] = set
		ids[i] = i * 2
	}
	cfg := Config{K: k, Dim: dim}
	inc := New(cfg)
	for i, set := range sets {
		inc.Add(set, ids[i])
	}
	// Precomputed centroids taken from the incremental index — exactly
	// what a snapshot persists.
	cents := make([][]float64, n)
	for i := range cents {
		cents[i] = inc.Centroid(i)
	}
	for _, withCents := range []bool{false, true} {
		var c [][]float64
		if withCents {
			c = cents
		}
		flats := make([]vectorset.Flat, n)
		for i, set := range sets {
			flats[i] = vectorset.FlatFromRows(set)
		}
		bulk := NewBulk(cfg, flats, ids, c)
		for qi := 0; qi < 10; qi++ {
			q := sets[rng.Intn(n)]
			a, b := inc.KNN(q, 9), bulk.KNN(q, 9)
			if len(a) != len(b) {
				t.Fatalf("withCents=%v: KNN sizes %d vs %d", withCents, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("withCents=%v: KNN[%d] = %+v vs %+v", withCents, i, a[i], b[i])
				}
			}
			eps := a[len(a)/2].Dist
			ra, rb := inc.Range(q, eps), bulk.Range(q, eps)
			if len(ra) != len(rb) {
				t.Fatalf("withCents=%v: Range sizes %d vs %d", withCents, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("withCents=%v: Range[%d] = %+v vs %+v", withCents, i, ra[i], rb[i])
				}
			}
		}
	}
}

func TestNewBulkEmpty(t *testing.T) {
	ix := NewBulk(Config{K: 3, Dim: 2}, nil, nil, nil)
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if got := ix.KNN([][]float64{{1, 2}}, 3); got != nil {
		t.Fatalf("KNN on empty bulk index = %v", got)
	}
}
