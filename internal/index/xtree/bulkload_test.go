package xtree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/voxset/voxset/internal/storage"
)

func TestBulkLoadQueriesMatchBruteForce(t *testing.T) {
	for _, dim := range []int{2, 6} {
		pts := randPoints(int64(dim)+100, 500, dim)
		ids := make([]int, len(pts))
		for i := range ids {
			ids[i] = i
		}
		tr := BulkLoad(pts, ids, Config{})
		if tr.Len() != 500 {
			t.Fatalf("len = %d", tr.Len())
		}
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 15; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64() * 100
			}
			got := tr.KNN(q, 8)
			want := bruteKNN(pts, q, 8)
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("dim %d trial %d rank %d: %v vs %v",
						dim, trial, i, got[i].Dist, want[i].Dist)
				}
			}
			eps := 25.0
			gr := tr.Range(q, eps)
			wantN := 0
			for _, p := range pts {
				if euclid(p, q) <= eps {
					wantN++
				}
			}
			if len(gr) != wantN {
				t.Fatalf("dim %d: range %d, want %d", dim, len(gr), wantN)
			}
		}
	}
}

func TestBulkLoadBeatsIterativeOnIO(t *testing.T) {
	dim := 6
	pts := randPoints(42, 2000, dim)
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}

	var trBulk, trIter storage.Tracker
	bulk := BulkLoad(pts, ids, Config{Tracker: &trBulk})
	iter := New(dim, Config{Tracker: &trIter})
	for i, p := range pts {
		iter.Insert(p, i)
	}
	trBulk.Reset()
	trIter.Reset()
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 50; q++ {
		query := make([]float64, dim)
		for j := range query {
			query[j] = rng.Float64() * 100
		}
		bulk.KNN(query, 10)
		iter.KNN(query, 10)
	}
	// STR's advantage is construction cost; query I/O should stay in the
	// same ballpark as the R*-style iterative build (high-dimensional STR
	// tiling is known to trail slightly on overlap).
	if float64(trBulk.PageAccesses()) > 1.5*float64(trIter.PageAccesses()) {
		t.Errorf("bulk-loaded tree used %d pages, iterative %d — packing degraded badly",
			trBulk.PageAccesses(), trIter.PageAccesses())
	}
	t.Logf("pages per 50 queries: bulk %d, iterative %d", trBulk.PageAccesses(), trIter.PageAccesses())
}

func TestBulkLoadThenInsert(t *testing.T) {
	pts := randPoints(7, 300, 4)
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	tr := BulkLoad(pts, ids, Config{})
	// Inserting after bulk loading must keep queries exact.
	extra := randPoints(8, 100, 4)
	all := append(append([][]float64{}, pts...), extra...)
	for i, p := range extra {
		tr.Insert(p, 300+i)
	}
	if tr.Len() != 400 {
		t.Fatalf("len = %d", tr.Len())
	}
	got := tr.KNN(all[350], 5)
	want := bruteKNN(all, all[350], 5)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestBulkLoadDuplicatePoints(t *testing.T) {
	p := []float64{1, 2, 3}
	var pts [][]float64
	var ids []int
	for i := 0; i < 500; i++ {
		pts = append(pts, p)
		ids = append(ids, i)
	}
	tr := BulkLoad(pts, ids, Config{})
	got := tr.KNN(p, 500)
	if len(got) != 500 {
		t.Fatalf("got %d of 500 duplicates", len(got))
	}
}

func TestBulkLoadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched lengths")
		}
	}()
	BulkLoad([][]float64{{1, 2}}, []int{0, 1}, Config{})
}

func TestBulkLoadEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty input")
		}
	}()
	BulkLoad(nil, nil, Config{})
}

func TestBulkLoadSinglePoint(t *testing.T) {
	tr := BulkLoad([][]float64{{5, 5}}, []int{7}, Config{})
	got := tr.KNN([]float64{0, 0}, 1)
	if len(got) != 1 || got[0].ID != 7 {
		t.Errorf("knn = %v", got)
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d", tr.Height())
	}
}
