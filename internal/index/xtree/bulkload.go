package xtree

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// BulkLoad builds an X-tree over the given points with the Sort-Tile-
// Recursive (STR) algorithm: points are recursively tiled into slabs per
// dimension so leaves are spatially compact and the directory has minimal
// overlap. For static datasets (the evaluation workloads) this yields
// better-packed trees than iterative insertion. ids[i] is the object id
// of points[i].
func BulkLoad(points [][]float64, ids []int, cfg Config) *Tree {
	if len(points) != len(ids) {
		panic(fmt.Sprintf("xtree: %d points but %d ids", len(points), len(ids)))
	}
	if len(points) == 0 {
		panic("xtree: BulkLoad needs at least one point")
	}
	dim := len(points[0])
	t := New(dim, cfg)

	entries := make([]entry, len(points))
	for i, p := range points {
		t.checkPoint(p)
		entries[i] = entry{r: pointRect(p), id: ids[i]}
	}

	leaves := t.strPack(entries, true)
	level := leaves
	for len(level) > 1 {
		// Wrap nodes as directory entries and pack again.
		dirEntries := make([]entry, len(level))
		for i, n := range level {
			dirEntries[i] = entry{r: mbrOf(n.entries), child: n}
		}
		level = t.strPack(dirEntries, false)
	}
	t.root = level[0]
	t.size = len(points)
	t.height = 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		t.height++
	}
	return t
}

// strPack tiles entries into nodes of the appropriate capacity using
// recursive sort-tile partitioning over all dimensions.
func (t *Tree) strPack(entries []entry, leaf bool) []*node {
	capacity := t.dirCap
	if leaf {
		capacity = t.leafCap
	}
	// Target fill below capacity leaves room for later inserts.
	fill := int(float64(capacity) * 0.85)
	if fill < 2 {
		fill = 2
	}
	var out []*node
	// The recursion sorts two-word key records, never the 56-byte
	// entries themselves: entries are gathered exactly once, when a node
	// is emitted. Permuting []entry per tiling level was the dominant
	// bulk-load cost (pointer-bearing structs pay write barriers and GC
	// scans on every move).
	keys := make([]strKey, len(entries))
	keyTmp := make([]strKey, len(entries))
	for i := range keys {
		keys[i].idx = int32(i)
	}
	gather := func(k []strKey) []entry {
		es := make([]entry, len(k))
		for i, r := range k {
			es[i] = entries[r.idx]
		}
		return es
	}
	var rec func(k []strKey, d int)
	rec = func(k []strKey, d int) {
		if len(k) <= fill {
			out = append(out, &node{leaf: leaf, pages: 1, entries: gather(k)})
			return
		}
		if d >= t.dim {
			// All dimensions consumed but the set is still too large
			// (extreme duplication): chop sequentially.
			for i := 0; i < len(k); i += fill {
				end := i + fill
				if end > len(k) {
					end = len(k)
				}
				out = append(out, &node{leaf: leaf, pages: 1, entries: gather(k[i:end])})
			}
			return
		}
		nodesNeeded := (len(k) + fill - 1) / fill
		// Number of slabs along this dimension: the (dim-d)-th root of the
		// node count.
		slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(t.dim-d))))
		if slabs < 1 {
			slabs = 1
		}
		perSlab := (len(k) + slabs - 1) / slabs
		sortKeysSTR(entries, k, keyTmp[:len(k)], d)
		for i := 0; i < len(k); i += perSlab {
			end := i + perSlab
			if end > len(k) {
				end = len(k)
			}
			rec(k[i:end], d+1)
		}
	}
	rec(keys, 0)
	return out
}

// strKey is a sort record for sortEntriesSTR: one entry's tiling key in
// the order-preserving integer encoding, plus its position.
type strKey struct {
	key uint64
	idx int32
}

// sortableBits maps a float64 to a uint64 whose unsigned order matches
// the float order (sign bit flipped for positives, all bits for
// negatives — the classic radix-sortable encoding).
func sortableBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// sortKeysSTR orders the key records k — positions into entries — by
// the STR tiling key lo[d], keeping the previous level's order for
// duplicates (stable radix; the comparison fallback for small slabs
// breaks ties by position, which small-slab inputs arrive in). The
// packed tree is therefore a deterministic function of the input, which
// sortEntries' unstable comparison sort never guaranteed.
func sortKeysSTR(entries []entry, k, tmp []strKey, d int) {
	for i := range k {
		k[i].key = sortableBits(entries[k[i].idx].r.lo[d])
	}
	if len(k) < 128 {
		// Insertion-grade sizes where radix setup dominates.
		slices.SortFunc(k, func(a, b strKey) int {
			if a.key != b.key {
				return cmp.Compare(a.key, b.key)
			}
			return cmp.Compare(a.idx, b.idx)
		})
		return
	}
	radixSortKeys(k, tmp)
}

// radixSortKeys sorts k by key with a stable byte-wise LSD radix sort,
// using tmp as the scatter buffer. Bytes on which every key agrees are
// skipped (for clustered float data most high bytes are uniform, so a
// typical sort does 3-5 scatter passes, not 8).
func radixSortKeys(k, tmp []strKey) {
	var counts [8][256]int32
	for _, r := range k {
		key := r.key
		for b := 0; b < 8; b++ {
			counts[b][byte(key>>(8*uint(b)))]++
		}
	}
	home := &k[0]
	n := int32(len(k))
	for b := 0; b < 8; b++ {
		c := &counts[b]
		first := byte(k[0].key >> (8 * uint(b)))
		if c[first] == n {
			continue // every key has the same byte here
		}
		sum := int32(0)
		for v := range c {
			sum, c[v] = sum+c[v], sum
		}
		for _, r := range k {
			v := byte(r.key >> (8 * uint(b)))
			tmp[c[v]] = r
			c[v]++
		}
		k, tmp = tmp, k
	}
	// An odd number of scatter passes leaves the sorted records in the
	// scratch buffer; copy them home.
	if &k[0] != home {
		copy(tmp, k)
	}
}
