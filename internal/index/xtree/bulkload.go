package xtree

import (
	"fmt"
	"math"
)

// BulkLoad builds an X-tree over the given points with the Sort-Tile-
// Recursive (STR) algorithm: points are recursively tiled into slabs per
// dimension so leaves are spatially compact and the directory has minimal
// overlap. For static datasets (the evaluation workloads) this yields
// better-packed trees than iterative insertion. ids[i] is the object id
// of points[i].
func BulkLoad(points [][]float64, ids []int, cfg Config) *Tree {
	if len(points) != len(ids) {
		panic(fmt.Sprintf("xtree: %d points but %d ids", len(points), len(ids)))
	}
	if len(points) == 0 {
		panic("xtree: BulkLoad needs at least one point")
	}
	dim := len(points[0])
	t := New(dim, cfg)

	entries := make([]entry, len(points))
	for i, p := range points {
		t.checkPoint(p)
		entries[i] = entry{r: pointRect(p), id: ids[i]}
	}

	leaves := t.strPack(entries, true)
	level := leaves
	for len(level) > 1 {
		// Wrap nodes as directory entries and pack again.
		dirEntries := make([]entry, len(level))
		for i, n := range level {
			dirEntries[i] = entry{r: mbrOf(n.entries), child: n}
		}
		level = t.strPack(dirEntries, false)
	}
	t.root = level[0]
	t.size = len(points)
	t.height = 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		t.height++
	}
	return t
}

// strPack tiles entries into nodes of the appropriate capacity using
// recursive sort-tile partitioning over all dimensions.
func (t *Tree) strPack(entries []entry, leaf bool) []*node {
	capacity := t.dirCap
	if leaf {
		capacity = t.leafCap
	}
	// Target fill below capacity leaves room for later inserts.
	fill := int(float64(capacity) * 0.85)
	if fill < 2 {
		fill = 2
	}
	var out []*node
	var rec func(es []entry, d int)
	rec = func(es []entry, d int) {
		if len(es) <= fill {
			n := &node{leaf: leaf, pages: 1, entries: append([]entry(nil), es...)}
			out = append(out, n)
			return
		}
		if d >= t.dim {
			// All dimensions consumed but the set is still too large
			// (extreme duplication): chop sequentially.
			for i := 0; i < len(es); i += fill {
				end := i + fill
				if end > len(es) {
					end = len(es)
				}
				out = append(out, &node{leaf: leaf, pages: 1, entries: append([]entry(nil), es[i:end]...)})
			}
			return
		}
		nodesNeeded := (len(es) + fill - 1) / fill
		// Number of slabs along this dimension: the (dim-d)-th root of the
		// node count.
		slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(t.dim-d))))
		if slabs < 1 {
			slabs = 1
		}
		perSlab := (len(es) + slabs - 1) / slabs
		sortEntries(es, d)
		for i := 0; i < len(es); i += perSlab {
			end := i + perSlab
			if end > len(es) {
				end = len(es)
			}
			rec(es[i:end], d+1)
		}
	}
	sorted := append([]entry(nil), entries...)
	rec(sorted, 0)
	return out
}
