package xtree

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
)

// External-memory STR bulk load (DESIGN.md §11). The in-memory BulkLoad
// sorts the full point array once per tiling dimension, which at
// million-object scale means the sort working set — not the tree — is
// what bounds the build. BulkLoadExternal keeps that working set
// constant: points are spilled to a temporary file, each STR tiling
// level is realized as an external sort (bounded in-memory runs merged
// k ways), and only segments at or below RunSize points are ever sorted
// in RAM. The finished tree is identical in kind to BulkLoad's — leaves
// packed to the same fill factor, directory levels packed bottom-up —
// and query results over it are exact regardless of tiling order, so
// the two builds are interchangeable (the parity tests in filter assert
// byte-identical query transcripts).

// ExternalConfig tunes BulkLoadExternal.
type ExternalConfig struct {
	Config
	// TmpDir hosts the spill files (the system temp directory if empty).
	TmpDir string
	// RunSize is the largest number of points sorted in memory at once
	// (1<<16 if zero). Peak memory is O(RunSize · dim), independent of n.
	RunSize int
}

// extPoint is a point staged for sorting.
type extPoint struct {
	p  []float64
	id int
}

// extBuild carries the state of one external build.
type extBuild struct {
	t       *Tree
	dim     int
	recSize int
	runSize int
	tmpDir  string
	fill    int // leaf fill target, same 0.85 factor as strPack
}

// BulkLoadExternal builds an X-tree over n dim-dimensional points
// produced by next, which must fill p (len dim) and return the point's
// object id; it is called exactly n times, in insertion order. Unlike
// BulkLoad, the caller never materializes the points: peak memory is
// one sort run plus the finished tree.
func BulkLoadExternal(dim, n int, next func(p []float64) (int, error), cfg ExternalConfig) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("xtree: dimension must be positive")
	}
	if n <= 0 {
		return nil, fmt.Errorf("xtree: BulkLoadExternal needs at least one point")
	}
	t := New(dim, cfg.Config)
	b := &extBuild{
		t:       t,
		dim:     dim,
		recSize: (dim + 1) * 8,
		runSize: cfg.RunSize,
		tmpDir:  cfg.TmpDir,
	}
	if b.runSize <= 0 {
		b.runSize = 1 << 16
	}
	if b.runSize < 2 {
		b.runSize = 2
	}
	b.fill = int(float64(t.leafCap) * 0.85)
	if b.fill < 2 {
		b.fill = 2
	}

	var leaves []*node
	if n <= b.runSize {
		// Small enough to never touch disk.
		pts := make([]extPoint, n)
		buf := make([]float64, n*dim)
		for i := range pts {
			p := buf[i*dim : (i+1)*dim]
			id, err := next(p)
			if err != nil {
				return nil, err
			}
			pts[i] = extPoint{p: p, id: id}
		}
		b.packMem(pts, 0, &leaves)
	} else {
		// Spill every point, then tile recursively with external sorts.
		spill, err := os.CreateTemp(b.tmpDir, "xtree-str-*.spill")
		if err != nil {
			return nil, err
		}
		defer discardTemp(spill)
		bw := bufio.NewWriter(spill)
		rec := make([]byte, b.recSize)
		p := make([]float64, dim)
		for i := 0; i < n; i++ {
			id, err := next(p)
			if err != nil {
				return nil, err
			}
			b.encodeRec(rec, p, id)
			if _, err := bw.Write(rec); err != nil {
				return nil, err
			}
		}
		if err := bw.Flush(); err != nil {
			return nil, err
		}
		if leaves, err = b.buildLeaves(spill, 0, n, 0, &leaves); err != nil {
			return nil, err
		}
	}

	// Directory levels are packed in memory: leaf count is n/fill, three
	// orders of magnitude below n, so bottom-up packing is cheap.
	level := leaves
	for len(level) > 1 {
		dirEntries := make([]entry, len(level))
		for i, nd := range level {
			dirEntries[i] = entry{r: mbrOf(nd.entries), child: nd}
		}
		level = t.strPack(dirEntries, false)
	}
	t.root = level[0]
	t.size = n
	t.height = 1
	for nd := t.root; !nd.leaf; nd = nd.entries[0].child {
		t.height++
	}
	return t, nil
}

// buildLeaves tiles the count points at byte offset off·recSize of f
// (already grouped by the slabs of dimensions < d) into leaf nodes.
func (b *extBuild) buildLeaves(f *os.File, off int64, count, d int, out *[]*node) ([]*node, error) {
	if count <= b.runSize {
		pts, err := b.readPoints(f, off, count)
		if err != nil {
			return nil, err
		}
		b.packMem(pts, d, out)
		return *out, nil
	}
	if d >= b.dim {
		// All dimensions consumed (extreme duplication): chop the segment
		// sequentially, streaming one run at a time.
		for done := 0; done < count; {
			n := min(b.runSize, count-done)
			pts, err := b.readPoints(f, off+int64(done), n)
			if err != nil {
				return nil, err
			}
			for i := 0; i < len(pts); i += b.fill {
				end := min(i+b.fill, len(pts))
				*out = append(*out, b.leafOf(pts[i:end]))
			}
			done += n
		}
		return *out, nil
	}
	sorted, err := b.externalSort(f, off, count, d)
	if err != nil {
		return nil, err
	}
	defer discardTemp(sorted)

	nodesNeeded := (count + b.fill - 1) / b.fill
	slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(b.dim-d))))
	if slabs < 1 {
		slabs = 1
	}
	perSlab := (count + slabs - 1) / slabs
	for lo := 0; lo < count; lo += perSlab {
		n := min(perSlab, count-lo)
		if _, err := b.buildLeaves(sorted, int64(lo), n, d+1, out); err != nil {
			return nil, err
		}
	}
	return *out, nil
}

// packMem is the in-memory tail of the recursion: the strPack tiling
// starting at dimension d (dimensions before d were tiled externally).
func (b *extBuild) packMem(pts []extPoint, d int, out *[]*node) {
	if len(pts) <= b.fill {
		*out = append(*out, b.leafOf(pts))
		return
	}
	if d >= b.dim {
		for i := 0; i < len(pts); i += b.fill {
			*out = append(*out, b.leafOf(pts[i:min(i+b.fill, len(pts))]))
		}
		return
	}
	nodesNeeded := (len(pts) + b.fill - 1) / b.fill
	slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(b.dim-d))))
	if slabs < 1 {
		slabs = 1
	}
	perSlab := (len(pts) + slabs - 1) / slabs
	b.sortPoints(pts, d)
	for i := 0; i < len(pts); i += perSlab {
		b.packMem(pts[i:min(i+perSlab, len(pts))], d+1, out)
	}
}

func (b *extBuild) leafOf(pts []extPoint) *node {
	n := &node{leaf: true, pages: 1, entries: make([]entry, len(pts))}
	for i, pt := range pts {
		n.entries[i] = entry{r: pointRect(pt.p), id: pt.id}
	}
	return n
}

// lessPoint is the total order used by every external sort and merge:
// primary key dimension d, remaining dimensions cyclically as
// tie-breaks, object id last. Totality makes run merging — and with it
// the whole build — deterministic for a given input order.
func (b *extBuild) lessPoint(x, y extPoint, d int) bool {
	for i := 0; i < b.dim; i++ {
		di := (d + i) % b.dim
		if x.p[di] != y.p[di] {
			return x.p[di] < y.p[di]
		}
	}
	return x.id < y.id
}

func (b *extBuild) sortPoints(pts []extPoint, d int) {
	// Non-reflective sort; lessPoint is a total order, so this emits the
	// same permutation sort.Slice did.
	slices.SortFunc(pts, func(x, y extPoint) int {
		if b.lessPoint(x, y, d) {
			return -1
		}
		if b.lessPoint(y, x, d) {
			return 1
		}
		return 0
	})
}

// externalSort sorts the count points at offset off·recSize of f by
// dimension d into a fresh temp file: bounded in-memory runs, then one
// k-way heap merge.
func (b *extBuild) externalSort(f *os.File, off int64, count, d int) (*os.File, error) {
	runs, err := os.CreateTemp(b.tmpDir, "xtree-str-*.runs")
	if err != nil {
		return nil, err
	}
	defer discardTemp(runs)
	bw := bufio.NewWriter(runs)
	rec := make([]byte, b.recSize)
	var runCounts []int
	for done := 0; done < count; {
		n := min(b.runSize, count-done)
		pts, err := b.readPoints(f, off+int64(done), n)
		if err != nil {
			return nil, err
		}
		b.sortPoints(pts, d)
		for _, pt := range pts {
			b.encodeRec(rec, pt.p, pt.id)
			if _, err := bw.Write(rec); err != nil {
				return nil, err
			}
		}
		runCounts = append(runCounts, n)
		done += n
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}

	out, err := os.CreateTemp(b.tmpDir, "xtree-str-*.sorted")
	if err != nil {
		return nil, err
	}
	h := &mergeHeap{b: b, d: d}
	runOff := int64(0)
	for _, n := range runCounts {
		r := &runReader{
			br:   bufio.NewReader(io.NewSectionReader(runs, runOff*int64(b.recSize), int64(n)*int64(b.recSize))),
			left: n,
			b:    b,
		}
		runOff += int64(n)
		pt, ok, err := r.next()
		if err != nil {
			discardTemp(out)
			return nil, err
		}
		if ok {
			h.items = append(h.items, mergeItem{pt: pt, r: r})
		}
	}
	heap.Init(h)
	ow := bufio.NewWriter(out)
	for h.Len() > 0 {
		it := h.items[0]
		b.encodeRec(rec, it.pt.p, it.pt.id)
		if _, err := ow.Write(rec); err != nil {
			discardTemp(out)
			return nil, err
		}
		pt, ok, err := it.r.next()
		if err != nil {
			discardTemp(out)
			return nil, err
		}
		if ok {
			h.items[0].pt = pt
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	if err := ow.Flush(); err != nil {
		discardTemp(out)
		return nil, err
	}
	return out, nil
}

// runReader streams one sorted run during the merge.
type runReader struct {
	br   *bufio.Reader
	left int
	b    *extBuild
	rec  []byte
}

func (r *runReader) next() (extPoint, bool, error) {
	if r.left == 0 {
		return extPoint{}, false, nil
	}
	if r.rec == nil {
		r.rec = make([]byte, r.b.recSize)
	}
	if _, err := io.ReadFull(r.br, r.rec); err != nil {
		return extPoint{}, false, err
	}
	r.left--
	p := make([]float64, r.b.dim)
	id := decodeRec(r.rec, p)
	return extPoint{p: p, id: id}, true, nil
}

type mergeItem struct {
	pt extPoint
	r  *runReader
}

type mergeHeap struct {
	items []mergeItem
	b     *extBuild
	d     int
}

func (h *mergeHeap) Len() int           { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool { return h.b.lessPoint(h.items[i].pt, h.items[j].pt, h.d) }
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	it := old[len(old)-1]
	h.items = old[:len(old)-1]
	return it
}

// readPoints loads count records starting at point offset off of f.
func (b *extBuild) readPoints(f *os.File, off int64, count int) ([]extPoint, error) {
	br := bufio.NewReader(io.NewSectionReader(f, off*int64(b.recSize), int64(count)*int64(b.recSize)))
	pts := make([]extPoint, count)
	buf := make([]float64, count*b.dim)
	rec := make([]byte, b.recSize)
	for i := range pts {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, err
		}
		p := buf[i*b.dim : (i+1)*b.dim]
		pts[i] = extPoint{p: p, id: decodeRec(rec, p)}
	}
	return pts, nil
}

func (b *extBuild) encodeRec(rec []byte, p []float64, id int) {
	for i, v := range p {
		binary.LittleEndian.PutUint64(rec[i*8:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(rec[len(p)*8:], uint64(id))
}

func decodeRec(rec []byte, p []float64) int {
	for i := range p {
		p[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[i*8:]))
	}
	return int(binary.LittleEndian.Uint64(rec[len(p)*8:]))
}

// discardTemp closes and deletes a spill file.
func discardTemp(f *os.File) {
	f.Close()
	os.Remove(f.Name())
}
