package xtree

import (
	"math/rand"
	"testing"
)

func extCorpus(n, dim int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	ids := make([]int, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
		ids[i] = i * 7
	}
	return pts, ids
}

// TestBulkLoadExternalMatchesInMemory checks the out-of-core build
// against the in-memory one: same size, every point findable, and
// identical KNN answers (distances are continuous random values, so
// tie order cannot differ between the two trees).
func TestBulkLoadExternalMatchesInMemory(t *testing.T) {
	const n, dim = 3000, 5
	pts, ids := extCorpus(n, dim, 7)
	mem := BulkLoad(pts, ids, Config{})

	// RunSize 128 forces the spill + multi-run merge path several
	// recursion levels deep.
	i := 0
	ext, err := BulkLoadExternal(dim, n, func(p []float64) (int, error) {
		copy(p, pts[i])
		i++
		return ids[i-1], nil
	}, ExternalConfig{TmpDir: t.TempDir(), RunSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len() != mem.Len() {
		t.Fatalf("external tree holds %d points, want %d", ext.Len(), mem.Len())
	}
	queries, _ := extCorpus(25, dim, 99)
	for qi, q := range queries {
		a, b := mem.KNN(q, 10), ext.KNN(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d result %d: in-memory %+v, external %+v", qi, j, a[j], b[j])
			}
		}
	}
}

// TestBulkLoadExternalSmallStaysInMemory covers the no-spill fast path.
func TestBulkLoadExternalSmallStaysInMemory(t *testing.T) {
	const n, dim = 40, 3
	pts, ids := extCorpus(n, dim, 3)
	i := 0
	tree, err := BulkLoadExternal(dim, n, func(p []float64) (int, error) {
		copy(p, pts[i])
		i++
		return ids[i-1], nil
	}, ExternalConfig{RunSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d, want %d", tree.Len(), n)
	}
	for j, p := range pts {
		got := tree.KNN(p, 1)
		if len(got) != 1 || got[0].ID != ids[j] || got[0].Dist != 0 {
			t.Fatalf("point %d not found at distance 0: %+v", j, got)
		}
	}
}

// TestBulkLoadExternalDuplicatePoints exercises the d >= dim sequential
// chop (all tiling dimensions consumed by identical coordinates).
func TestBulkLoadExternalDuplicatePoints(t *testing.T) {
	const n, dim = 900, 2
	i := 0
	tree, err := BulkLoadExternal(dim, n, func(p []float64) (int, error) {
		p[0], p[1] = 1.5, -2.5
		i++
		return i - 1, nil
	}, ExternalConfig{TmpDir: t.TempDir(), RunSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d, want %d", tree.Len(), n)
	}
	if got := tree.Range([]float64{1.5, -2.5}, 0.01); len(got) != n {
		t.Fatalf("Range found %d of %d duplicates", len(got), n)
	}
}
