package xtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestRadixSortKeysMatchesComparisonSort cross-checks the radix sort
// against the library sort on adversarial key mixes: negatives,
// duplicates, zeros, and keys that agree on most bytes (the uniform-byte
// skip path).
func TestRadixSortKeysMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	gens := map[string]func() float64{
		"uniform":    func() float64 { return rng.Float64()*20 - 10 },
		"duplicates": func() float64 { return float64(rng.Intn(7)) },
		"clustered":  func() float64 { return 1000 + rng.Float64()*1e-6 },
		"signs":      func() float64 { return math.Copysign(rng.Float64(), rng.Float64()-0.5) },
	}
	for name, gen := range gens {
		for _, n := range []int{128, 1000, 4096} {
			keys := make([]strKey, n)
			for i := range keys {
				keys[i] = strKey{key: sortableBits(gen()), idx: int32(i)}
			}
			want := append([]strKey(nil), keys...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
			radixSortKeys(keys, make([]strKey, n))
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("%s n=%d: record %d is %+v, want %+v (stable order violated)",
						name, n, i, keys[i], want[i])
				}
			}
		}
	}
}

// TestSortableBits pins the order-preserving float encoding: a total
// order refining the float order (so −0 sorts directly before +0, which
// a comparison sort would treat as a tie — equally valid as a tiling
// order, and deterministic).
func TestSortableBits(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, math.Copysign(0, -1), 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := sortableBits(vals[i-1]), sortableBits(vals[i])
		if a >= b {
			t.Fatalf("encoding does not strictly order %v before %v", vals[i-1], vals[i])
		}
	}
}
