package xtree

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeleteBasic(t *testing.T) {
	tr := New(2, Config{})
	tr.Insert([]float64{1, 1}, 0)
	tr.Insert([]float64{2, 2}, 1)
	if !tr.Delete([]float64{1, 1}, 0) {
		t.Fatal("delete failed")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
	res := tr.KNN([]float64{1, 1}, 2)
	if len(res) != 1 || res[0].ID != 1 {
		t.Errorf("results after delete = %v", res)
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr := New(2, Config{})
	tr.Insert([]float64{1, 1}, 0)
	if tr.Delete([]float64{9, 9}, 0) {
		t.Error("delete of absent point should fail")
	}
	if tr.Delete([]float64{1, 1}, 99) {
		t.Error("delete with wrong id should fail")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestDeleteHalfThenQueriesExact(t *testing.T) {
	dim := 4
	pts := randPoints(21, 600, dim)
	tr := New(dim, Config{})
	for i, p := range pts {
		tr.Insert(p, i)
	}
	// Delete every even-indexed point.
	for i := 0; i < len(pts); i += 2 {
		if !tr.Delete(pts[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Queries must exactly match brute force over the survivors.
	var alive [][]float64
	var ids []int
	for i := 1; i < len(pts); i += 2 {
		alive = append(alive, pts[i])
		ids = append(ids, i)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64() * 100
		}
		got := tr.KNN(q, 5)
		bestDist := make([]float64, 0, len(alive))
		for _, p := range alive {
			bestDist = append(bestDist, euclid(p, q))
		}
		// Check the top result against brute force minimum.
		min := math.Inf(1)
		for _, d := range bestDist {
			if d < min {
				min = d
			}
		}
		if math.Abs(got[0].Dist-min) > 1e-9 {
			t.Fatalf("trial %d: nearest %v, want %v", trial, got[0].Dist, min)
		}
		for _, nb := range got {
			if nb.ID%2 == 0 {
				t.Fatalf("deleted id %d returned", nb.ID)
			}
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	pts := randPoints(22, 200, 3)
	tr := New(3, Config{})
	for i, p := range pts {
		tr.Insert(p, i)
	}
	for i, p := range pts {
		if !tr.Delete(p, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	if got := tr.KNN([]float64{0, 0, 0}, 3); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	// The tree must be reusable.
	tr.Insert([]float64{5, 5, 5}, 77)
	got := tr.KNN([]float64{5, 5, 5}, 1)
	if len(got) != 1 || got[0].ID != 77 {
		t.Errorf("reuse failed: %v", got)
	}
}

func TestDeleteDuplicatesById(t *testing.T) {
	tr := New(2, Config{})
	p := []float64{3, 3}
	for i := 0; i < 50; i++ {
		tr.Insert(p, i)
	}
	if !tr.Delete(p, 25) {
		t.Fatal("delete of duplicate by id failed")
	}
	res := tr.KNN(p, 50)
	if len(res) != 49 {
		t.Fatalf("got %d results", len(res))
	}
	for _, nb := range res {
		if nb.ID == 25 {
			t.Error("deleted duplicate still present")
		}
	}
}

func TestDeleteInterleavedWithInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := New(3, Config{})
	type obj struct {
		p  []float64
		id int
	}
	live := map[int]obj{}
	nextID := 0
	for op := 0; op < 3000; op++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			p := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
			tr.Insert(p, nextID)
			live[nextID] = obj{p, nextID}
			nextID++
		} else {
			// Delete a random live object.
			for id, o := range live {
				if !tr.Delete(o.p, id) {
					t.Fatalf("op %d: delete %d failed", op, id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(live))
	}
	// Full-range query returns exactly the live set.
	got := tr.Range(make([]float64, 3), 1e9)
	if len(got) != len(live) {
		t.Fatalf("range returned %d, want %d", len(got), len(live))
	}
	for _, nb := range got {
		if _, ok := live[nb.ID]; !ok {
			t.Fatalf("dead id %d returned", nb.ID)
		}
	}
}
