package xtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/storage"
)

func randPoints(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * 100
		}
	}
	return pts
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func bruteKNN(pts [][]float64, q []float64, k int) []index.Neighbor {
	var all []index.Neighbor
	for i, p := range pts {
		all = append(all, index.Neighbor{ID: i, Dist: euclid(p, q)})
	}
	sort.Sort(index.ByDistance(all))
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestXTreeInsertAndLen(t *testing.T) {
	tr := New(3, Config{})
	pts := randPoints(1, 500, 3)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	if tr.Len() != 500 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d; tree should have split", tr.Height())
	}
}

func TestXTreeKNNMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{2, 6, 16} {
		pts := randPoints(int64(dim), 400, dim)
		tr := New(dim, Config{})
		for i, p := range pts {
			tr.Insert(p, i)
		}
		rng := rand.New(rand.NewSource(77))
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64() * 100
			}
			got := tr.KNN(q, 10)
			want := bruteKNN(pts, q, 10)
			if len(got) != len(want) {
				t.Fatalf("dim %d: got %d results", dim, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("dim %d trial %d: result %d dist %v, want %v",
						dim, trial, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestXTreeRangeMatchesBruteForce(t *testing.T) {
	dim := 6
	pts := randPoints(5, 300, dim)
	tr := New(dim, Config{})
	for i, p := range pts {
		tr.Insert(p, i)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64() * 100
		}
		eps := 20 + rng.Float64()*40
		got := tr.Range(q, eps)
		want := map[int]bool{}
		for i, p := range pts {
			if euclid(p, q) <= eps {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for _, nb := range got {
			if !want[nb.ID] {
				t.Fatalf("unexpected result id %d", nb.ID)
			}
		}
	}
}

func TestXTreeKNNFewerPointsThanK(t *testing.T) {
	tr := New(2, Config{})
	tr.Insert([]float64{0, 0}, 0)
	tr.Insert([]float64{1, 1}, 1)
	got := tr.KNN([]float64{0, 0}, 10)
	if len(got) != 2 {
		t.Errorf("got %d results, want 2", len(got))
	}
}

func TestXTreeEmpty(t *testing.T) {
	tr := New(4, Config{})
	if got := tr.KNN(make([]float64, 4), 5); len(got) != 0 {
		t.Errorf("empty tree knn = %v", got)
	}
	if got := tr.Range(make([]float64, 4), 10); len(got) != 0 {
		t.Errorf("empty tree range = %v", got)
	}
}

func TestXTreeDimMismatchPanics(t *testing.T) {
	tr := New(3, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Insert([]float64{1, 2}, 0)
}

func TestXTreeRankingEnumeratesAllInOrder(t *testing.T) {
	dim := 6
	pts := randPoints(13, 150, dim)
	tr := New(dim, Config{})
	for i, p := range pts {
		tr.Insert(p, i)
	}
	q := make([]float64, dim)
	it := tr.NewRanking(q)
	var dists []float64
	seen := map[int]bool{}
	for {
		nb, ok := it.Next()
		if !ok {
			break
		}
		if seen[nb.ID] {
			t.Fatalf("id %d returned twice", nb.ID)
		}
		seen[nb.ID] = true
		dists = append(dists, nb.Dist)
	}
	if len(dists) != len(pts) {
		t.Fatalf("ranking returned %d of %d points", len(dists), len(pts))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Error("ranking not in distance order")
	}
}

func TestXTreeChargesTracker(t *testing.T) {
	var track storage.Tracker
	tr := New(6, Config{Tracker: &track})
	pts := randPoints(3, 1000, 6)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	track.Reset()
	tr.KNN(pts[0], 10)
	if track.PageAccesses() == 0 || track.BytesRead() == 0 {
		t.Error("query did not charge the tracker")
	}
	// A 10-nn query must touch far fewer pages than the whole tree.
	full := track.PageAccesses()
	track.Reset()
	tr.Range(pts[0], 1e9) // read everything
	if full >= track.PageAccesses() {
		t.Errorf("knn touched %d pages, full scan %d", full, track.PageAccesses())
	}
}

func TestXTreeHighDimBuildsSupernodes(t *testing.T) {
	// In very high dimensions with correlated data splits degrade and the
	// X-tree should fall back to supernodes rather than overlap.
	dim := 24
	rng := rand.New(rand.NewSource(17))
	tr := New(dim, Config{PageSize: 1024})
	for i := 0; i < 2000; i++ {
		p := make([]float64, dim)
		base := rng.Float64()
		for j := range p {
			p[j] = base + rng.Float64()*0.01 // highly correlated
		}
		tr.Insert(p, i)
	}
	if tr.Len() != 2000 {
		t.Fatal("bad len")
	}
	// Queries must still be correct.
	q := make([]float64, dim)
	got := tr.KNN(q, 5)
	if len(got) != 5 {
		t.Errorf("knn on degenerate data returned %d results", len(got))
	}
	t.Logf("supernodes created: %d, height: %d", tr.Supernodes(), tr.Height())
}

func TestXTreeDuplicatePoints(t *testing.T) {
	tr := New(3, Config{})
	p := []float64{1, 2, 3}
	for i := 0; i < 200; i++ {
		tr.Insert(p, i)
	}
	got := tr.KNN(p, 200)
	if len(got) != 200 {
		t.Fatalf("got %d of 200 duplicates", len(got))
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatal("duplicate at nonzero distance")
		}
	}
}

func TestXTreeInvalidDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, Config{})
}
