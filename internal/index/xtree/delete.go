package xtree

// Delete removes one indexed point with the given object id. It reports
// whether a matching (point, id) entry was found. Underflowing nodes are
// dissolved R*-style: their remaining entries are reinserted, directory
// MBRs shrink along the path, supernodes give back pages as they drain,
// and a single-child root is collapsed.
func (t *Tree) Delete(p []float64, id int) bool {
	t.checkPoint(p)
	var orphans []entry
	found := t.delete(t.root, p, id, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a single-child directory root.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true, pages: 1}
		t.height = 1
	}
	// Reinsert orphaned points.
	for _, e := range orphans {
		t.size--
		t.Insert(e.r.lo, e.id)
	}
	return true
}

// delete descends to the leaf holding (p, id), removes it, and handles
// underflow bottom-up. Orphaned leaf entries of dissolved subtrees are
// appended to orphans for reinsertion by the caller.
func (t *Tree) delete(n *node, p []float64, id int, orphans *[]entry) bool {
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.id != id {
				continue
			}
			same := true
			for d := range p {
				if e.r.lo[d] != p[d] {
					same = false
					break
				}
			}
			if !same {
				continue
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			t.shrinkSupernode(n)
			return true
		}
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !rectContainsPoint(e.r, p) {
			continue
		}
		if !t.delete(e.child, p, id, orphans) {
			continue
		}
		child := e.child
		minEntries := int(t.cfg.MinFillRatio * float64(t.capOf(child)))
		if minEntries < 1 {
			minEntries = 1
		}
		if len(child.entries) < minEntries {
			// Dissolve the child; its entries are reinserted (leaf
			// entries directly, subtree entries by collecting their
			// points).
			collectLeafEntries(child, orphans)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			e.r = mbrOf(child.entries)
		}
		t.shrinkSupernode(n)
		return true
	}
	return false
}

// shrinkSupernode releases supernode pages no longer needed.
func (t *Tree) shrinkSupernode(n *node) {
	for n.pages > 1 {
		perPage := t.dirCap
		if n.leaf {
			perPage = t.leafCap
		}
		if len(n.entries) > perPage*(n.pages-1) {
			break
		}
		n.pages--
		if n.pages == 1 {
			t.supernodes--
		}
	}
}

func collectLeafEntries(n *node, out *[]entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for i := range n.entries {
		collectLeafEntries(n.entries[i].child, out)
	}
}

func rectContainsPoint(r rect, p []float64) bool {
	for d := range p {
		if p[d] < r.lo[d] || p[d] > r.hi[d] {
			return false
		}
	}
	return true
}
