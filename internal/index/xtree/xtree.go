// Package xtree implements the X-tree of Berchtold, Keim and Kriegel
// (VLDB'96) [paper ref. 8]: an R*-tree derivative for high-dimensional
// point data that avoids the overlap degeneration of R-trees by keeping a
// split history and creating *supernodes* (directory nodes spanning
// several pages) whenever no overlap-minimal split is possible.
//
// The paper stores the 6-d extended centroids of the vector sets and the
// 6k-d one-vector features in X-trees (§4.3, §5.4). This implementation
// is memory-resident; node accesses are charged to an optional
// storage.Tracker with one page access per node page, reproducing the
// paper's I/O accounting.
package xtree

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/storage"
)

// Config tunes the tree.
type Config struct {
	// PageSize is the simulated page size in bytes (storage.DefaultPageSize
	// if zero).
	PageSize int
	// MinFillRatio is the minimum fraction of entries per node after a
	// split (0.4 if zero, the R*-tree default).
	MinFillRatio float64
	// MaxOverlapRatio is the overlap threshold above which a topological
	// split of a directory node is rejected (0.2 if zero, the X-tree
	// default).
	MaxOverlapRatio float64
	// Tracker, if non-nil, is charged for node accesses during queries.
	Tracker *storage.Tracker
}

// Tree is an X-tree over dim-dimensional points.
type Tree struct {
	dim        int
	cfg        Config
	root       *node
	size       int
	leafCap    int // entries per leaf page
	dirCap     int // entries per directory page
	height     int
	supernodes int
}

type rect struct {
	lo, hi []float64
}

type entry struct {
	r     rect
	child *node // nil for leaf entries
	id    int   // object id for leaf entries
}

type node struct {
	leaf    bool
	entries []entry
	pages   int    // ≥ 1; > 1 marks a supernode
	history uint64 // bitmask of dimensions this node was split along
}

// New returns an empty X-tree for dim-dimensional points.
func New(dim int, cfg Config) *Tree {
	if dim <= 0 {
		panic("xtree: dimension must be positive")
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	if cfg.MinFillRatio == 0 {
		cfg.MinFillRatio = 0.4
	}
	if cfg.MaxOverlapRatio == 0 {
		cfg.MaxOverlapRatio = 0.2
	}
	t := &Tree{dim: dim, cfg: cfg}
	// Leaf entry: point (dim float64) + id (8 bytes).
	t.leafCap = cfg.PageSize / (dim*8 + 8)
	// Directory entry: MBR (2·dim float64) + child pointer (8 bytes).
	t.dirCap = cfg.PageSize / (2*dim*8 + 8)
	if t.leafCap < 2 {
		t.leafCap = 2
	}
	if t.dirCap < 2 {
		t.dirCap = 2
	}
	t.root = &node{leaf: true, pages: 1}
	t.height = 1
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Supernodes returns the number of supernodes currently in the tree.
func (t *Tree) Supernodes() int { return t.supernodes }

// Dim returns the dimensionality of the indexed points.
func (t *Tree) Dim() int { return t.dim }

func (t *Tree) capOf(n *node) int {
	if n.leaf {
		return t.leafCap * n.pages
	}
	return t.dirCap * n.pages
}

func (t *Tree) checkPoint(p []float64) {
	if len(p) != t.dim {
		panic(fmt.Sprintf("xtree: point has dim %d, tree wants %d", len(p), t.dim))
	}
}

func pointRect(p []float64) rect {
	lo := append([]float64(nil), p...)
	hi := append([]float64(nil), p...)
	return rect{lo, hi}
}

func (r rect) clone() rect {
	return rect{append([]float64(nil), r.lo...), append([]float64(nil), r.hi...)}
}

func (r rect) enlarge(s rect) {
	for i := range r.lo {
		if s.lo[i] < r.lo[i] {
			r.lo[i] = s.lo[i]
		}
		if s.hi[i] > r.hi[i] {
			r.hi[i] = s.hi[i]
		}
	}
}

func (r rect) margin() float64 {
	m := 0.0
	for i := range r.lo {
		m += r.hi[i] - r.lo[i]
	}
	return m
}

func (r rect) area() float64 {
	a := 1.0
	for i := range r.lo {
		a *= r.hi[i] - r.lo[i]
	}
	return a
}

func (r rect) enlargedArea(s rect) float64 {
	a := 1.0
	for i := range r.lo {
		lo, hi := r.lo[i], r.hi[i]
		if s.lo[i] < lo {
			lo = s.lo[i]
		}
		if s.hi[i] > hi {
			hi = s.hi[i]
		}
		a *= hi - lo
	}
	return a
}

func (r rect) overlapArea(s rect) float64 {
	a := 1.0
	for i := range r.lo {
		lo := math.Max(r.lo[i], s.lo[i])
		hi := math.Min(r.hi[i], s.hi[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// minDist is the minimum squared-free Euclidean distance from point p to
// the rectangle.
func (r rect) minDist(p []float64) float64 {
	return math.Sqrt(r.minDistSq(p))
}

// minDistSq is minDist without the final square root — the ranking heap
// orders by it (sqrt is strictly monotone and tie-preserving on
// non-negative sums, so the pop order is unchanged) and takes the root
// only for point items it actually returns.
func (r rect) minDistSq(p []float64) float64 {
	sum := 0.0
	lo, hi := r.lo, r.hi
	for i := range p {
		var d float64
		if p[i] < lo[i] {
			d = lo[i] - p[i]
		} else if p[i] > hi[i] {
			d = p[i] - hi[i]
		}
		sum += d * d
	}
	return sum
}

func mbrOf(entries []entry) rect {
	r := entries[0].r.clone()
	for _, e := range entries[1:] {
		r.enlarge(e.r)
	}
	return r
}

// Insert adds the point with the given object id.
func (t *Tree) Insert(p []float64, id int) {
	t.checkPoint(p)
	e := entry{r: pointRect(p), id: id}
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: new root with the two halves.
		old := t.root
		t.root = &node{
			leaf:  false,
			pages: 1,
			entries: []entry{
				{r: mbrOf(old.entries), child: old},
				{r: mbrOf(split.entries), child: split},
			},
		}
		t.height++
	}
	t.size++
}

// insert descends to a leaf, inserts, and propagates splits upward.
// It returns a new sibling if the node was split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.capOf(n) {
			return t.split(n)
		}
		return nil
	}
	// ChooseSubtree: least overlap enlargement at the level above leaves,
	// least area enlargement otherwise (R*-tree policy, simplified to
	// least enlargement then least area everywhere — adequate for point
	// data).
	best := -1
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i := range n.entries {
		area := n.entries[i].r.area()
		enl := n.entries[i].r.enlargedArea(e.r) - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.entries[best].child
	sibling := t.insert(child, e)
	n.entries[best].r = mbrOf(child.entries)
	if sibling != nil {
		n.entries = append(n.entries, entry{r: mbrOf(sibling.entries), child: sibling})
		if len(n.entries) > t.capOf(n) {
			return t.split(n)
		}
	}
	return nil
}

// split implements the X-tree split decision: topological (R*) split; for
// directory nodes whose topological split overlaps too much, an
// overlap-minimal split along a shared split-history dimension; if that
// is too unbalanced, no split — the node grows into a supernode.
func (t *Tree) split(n *node) *node {
	dim, idx := t.topologicalSplit(n)
	left := n.entries[:idx]
	right := n.entries[idx:]

	if !n.leaf {
		lr, rr := mbrOf(left), mbrOf(right)
		overlap := lr.overlapArea(rr)
		union := lr.clone()
		union.enlarge(rr)
		if ua := union.area(); ua > 0 && overlap/ua > t.cfg.MaxOverlapRatio {
			// Try an overlap-minimal split along a dimension every child
			// has been split by (the split-history criterion).
			if d, i, ok := t.overlapMinimalSplit(n); ok {
				dim, idx = d, i
				left = n.entries[:idx]
				right = n.entries[idx:]
			} else {
				// No good split: extend into a supernode.
				if n.pages == 1 {
					t.supernodes++
				}
				n.pages++
				return nil
			}
		}
	}

	sib := &node{leaf: n.leaf, pages: 1, history: n.history | 1<<uint(dim)}
	sib.entries = append(sib.entries, right...)
	n.entries = append(n.entries[:0:0], left...)
	n.history |= 1 << uint(dim)
	if n.pages > 1 {
		t.supernodes--
		n.pages = 1
	}
	return sib
}

// topologicalSplit is the R*-tree split: choose the axis with minimal
// total margin over candidate distributions, then the distribution with
// minimal overlap (ties: minimal area). It sorts n.entries in place and
// returns the chosen axis and split position.
func (t *Tree) topologicalSplit(n *node) (axis, splitIdx int) {
	m := len(n.entries)
	minEntries := int(t.cfg.MinFillRatio * float64(t.capOf(n)))
	if minEntries < 1 {
		minEntries = 1
	}
	if minEntries > m/2 {
		minEntries = m / 2
	}

	bestAxis, bestMargin := -1, math.Inf(1)
	for d := 0; d < t.dim; d++ {
		sortEntries(n.entries, d)
		margin := 0.0
		for k := minEntries; k <= m-minEntries; k++ {
			margin += mbrOf(n.entries[:k]).margin() + mbrOf(n.entries[k:]).margin()
		}
		if margin < bestMargin {
			bestMargin, bestAxis = margin, d
		}
	}

	sortEntries(n.entries, bestAxis)
	bestIdx, bestOverlap, bestArea := -1, math.Inf(1), math.Inf(1)
	for k := minEntries; k <= m-minEntries; k++ {
		lr, rr := mbrOf(n.entries[:k]), mbrOf(n.entries[k:])
		ov := lr.overlapArea(rr)
		ar := lr.area() + rr.area()
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestIdx, bestOverlap, bestArea = k, ov, ar
		}
	}
	return bestAxis, bestIdx
}

// overlapMinimalSplit searches for a dimension in the split history of
// all children along which the entries separate with zero (or minimal)
// overlap and acceptable balance. Returns ok=false if every candidate is
// too unbalanced.
func (t *Tree) overlapMinimalSplit(n *node) (axis, splitIdx int, ok bool) {
	m := len(n.entries)
	// Dimensions shared by the split history of all children.
	shared := ^uint64(0)
	for _, e := range n.entries {
		if e.child != nil {
			shared &= e.child.history
		}
	}
	minBalance := int(t.cfg.MinFillRatio * float64(t.capOf(n)) / 2)
	if minBalance < 1 {
		minBalance = 1
	}
	for d := 0; d < t.dim; d++ {
		if shared != 0 && shared&(1<<uint(d)) == 0 {
			continue // prefer history dimensions when any exist
		}
		sortEntries(n.entries, d)
		for k := minBalance; k <= m-minBalance; k++ {
			lr, rr := mbrOf(n.entries[:k]), mbrOf(n.entries[k:])
			if lr.overlapArea(rr) == 0 {
				return d, k, true
			}
		}
	}
	return 0, 0, false
}

func sortEntries(es []entry, d int) {
	// slices.SortFunc, not sort.Slice: the reflection-based swapper was
	// ~45% of a 100k-object STR bulk load (the cold-start critical path).
	slices.SortFunc(es, func(a, b entry) int {
		if a.r.lo[d] != b.r.lo[d] {
			return cmp.Compare(a.r.lo[d], b.r.lo[d])
		}
		return cmp.Compare(a.r.hi[d], b.r.hi[d])
	})
}

func (t *Tree) charge(n *node) {
	if t.cfg.Tracker != nil {
		t.cfg.Tracker.AddPageAccess(n.pages)
		sz := 0
		if n.leaf {
			sz = len(n.entries) * (t.dim*8 + 8)
		} else {
			sz = len(n.entries) * (2*t.dim*8 + 8)
		}
		t.cfg.Tracker.AddBytes(sz)
	}
}

// Range reports all points within Euclidean distance eps of q.
func (t *Tree) Range(q []float64, eps float64) []index.Neighbor {
	t.checkPoint(q)
	var out []index.Neighbor
	t.rangeSearch(t.root, q, eps, &out)
	sort.Sort(index.ByDistance(out))
	return out
}

func (t *Tree) rangeSearch(n *node, q []float64, eps float64, out *[]index.Neighbor) {
	t.charge(n)
	for i := range n.entries {
		e := &n.entries[i]
		d := e.r.minDist(q)
		if d > eps {
			continue
		}
		if n.leaf {
			*out = append(*out, index.Neighbor{ID: e.id, Dist: d})
		} else {
			t.rangeSearch(e.child, q, eps, out)
		}
	}
}

// KNN reports the k nearest neighbors of q (fewer if the tree holds fewer
// points), ordered by distance. Best-first branch-and-bound search.
func (t *Tree) KNN(q []float64, k int) []index.Neighbor {
	it := t.NewRanking(q)
	var out []index.Neighbor
	for len(out) < k {
		nb, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, nb)
	}
	return out
}

// Ranking is an incremental nearest-neighbor iterator (Hjaltason &
// Samet style), the primitive required by the optimal multi-step k-nn
// algorithm of Seidl & Kriegel [29].
type Ranking struct {
	t *Tree
	q []float64
	h rankHeap
	// nodes holds the directory nodes referenced by heap items, so the
	// heap slice itself stays pointer-free (16-byte items, no write
	// barriers on sift swaps, no GC scanning of the candidate frontier).
	nodes []*node
}

type rankItem struct {
	dist float64
	// ref ≥ 0 is a point id; ref < 0 refers to Ranking.nodes[^ref].
	ref int64
}

// rankHeap is a hand-rolled binary min-heap over rankItem values. The
// sift routines mirror container/heap exactly (same comparisons, same
// swap order, so the pop sequence — ties included — is unchanged), but
// operating on the concrete slice avoids the interface{} boxing that
// made every Push/Pop in the hot ranking loop a heap allocation.
type rankHeap []rankItem

func (h *rankHeap) push(it rankItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *rankHeap) pop() rankItem {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	h.down(0, n)
	it := old[n]
	*h = old[:n]
	return it
}

func (h rankHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[i].dist <= h[j].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h rankHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2 // = 2*i + 2  // right child
		}
		if h[i].dist <= h[j].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// NewRanking starts an incremental ranking of all indexed points by
// distance to q.
func (t *Tree) NewRanking(q []float64) *Ranking {
	t.checkPoint(q)
	r := &Ranking{t: t, q: q, h: make(rankHeap, 0, 64)}
	r.nodes = append(r.nodes, t.root)
	r.h.push(rankItem{dist: 0, ref: ^int64(0)})
	return r
}

// Next returns the next closest point, or ok=false when exhausted.
// Heap items carry squared distances; the root is taken once per
// returned point, never for pruned subtrees or unvisited candidates.
func (r *Ranking) Next() (index.Neighbor, bool) {
	for len(r.h) > 0 {
		it := r.h.pop()
		if it.ref >= 0 {
			return index.Neighbor{ID: int(it.ref), Dist: math.Sqrt(it.dist)}, true
		}
		n := r.nodes[^it.ref]
		r.t.charge(n)
		for i := range n.entries {
			e := &n.entries[i]
			d := e.r.minDistSq(r.q)
			if n.leaf {
				r.h.push(rankItem{dist: d, ref: int64(e.id)})
			} else {
				r.h.push(rankItem{dist: d, ref: ^int64(len(r.nodes))})
				r.nodes = append(r.nodes, e.child)
			}
		}
	}
	return index.Neighbor{}, false
}
