// Package index defines the shared query types for the access methods of
// §4.3: the X-tree for feature vectors, the M-tree for metric objects,
// the sequential scan baseline and the extended-centroid filter pipeline.
package index

import (
	"cmp"
	"slices"
)

// Neighbor is one query result: an object id and its distance to the
// query.
type Neighbor struct {
	ID   int
	Dist float64
}

// SortNeighbors orders neighbors in place by the (dist, id) contract
// every query path in the repository returns results under: strictly
// ascending distance, with exact float equality broken by ascending id.
// The id tie-break makes every query result deterministic regardless of
// evaluation order — sequential and parallel engines, the scan baseline
// and the filter pipeline all produce identical output byte for byte,
// which is what the cross-engine parity tests assert. Callers comparing
// results (tests, caches, fingerprints) may rely on this total order.
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		if a.Dist != b.Dist {
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// ByDistance orders neighbors by distance, then id (for deterministic
// results).
type ByDistance []Neighbor

func (s ByDistance) Len() int      { return len(s) }
func (s ByDistance) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s ByDistance) Less(i, j int) bool {
	if s[i].Dist != s[j].Dist {
		return s[i].Dist < s[j].Dist
	}
	return s[i].ID < s[j].ID
}
