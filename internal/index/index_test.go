package index

import (
	"math/rand"
	"sort"
	"testing"
)

func TestByDistanceOrdering(t *testing.T) {
	ns := []Neighbor{
		{ID: 3, Dist: 2},
		{ID: 1, Dist: 1},
		{ID: 2, Dist: 1},
		{ID: 0, Dist: 5},
	}
	sort.Sort(ByDistance(ns))
	wantIDs := []int{1, 2, 3, 0}
	for i, nb := range ns {
		if nb.ID != wantIDs[i] {
			t.Fatalf("position %d: id %d, want %d (ties must break by id)", i, nb.ID, wantIDs[i])
		}
	}
	if !sort.IsSorted(ByDistance(ns)) {
		t.Error("IsSorted should hold after sorting")
	}
}

// TestSortNeighborsTieBreak pins the (dist, id) result contract: equal
// distances order by ascending id, and the order is total — any
// permutation of the same multiset sorts to the same sequence.
func TestSortNeighborsTieBreak(t *testing.T) {
	ns := []Neighbor{
		{ID: 9, Dist: 1.5},
		{ID: 2, Dist: 1.5},
		{ID: 7, Dist: 1.5},
		{ID: 1, Dist: 3},
		{ID: 0, Dist: 1.5},
		{ID: 4, Dist: 0.25},
	}
	SortNeighbors(ns)
	want := []Neighbor{
		{ID: 4, Dist: 0.25},
		{ID: 0, Dist: 1.5},
		{ID: 2, Dist: 1.5},
		{ID: 7, Dist: 1.5},
		{ID: 9, Dist: 1.5},
		{ID: 1, Dist: 3},
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("position %d: %+v, want %+v", i, ns[i], want[i])
		}
	}
}

// TestSortNeighborsPermutationInvariant: every evaluation order of the
// same results sorts to one canonical sequence — the property parallel
// engines rely on for byte-identical output.
func TestSortNeighborsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := []Neighbor{
		{ID: 5, Dist: 2}, {ID: 3, Dist: 2}, {ID: 8, Dist: 2},
		{ID: 1, Dist: 1}, {ID: 2, Dist: 1}, {ID: 9, Dist: 4},
	}
	canon := append([]Neighbor(nil), base...)
	SortNeighbors(canon)
	for trial := 0; trial < 50; trial++ {
		p := append([]Neighbor(nil), base...)
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		SortNeighbors(p)
		for i := range canon {
			if p[i] != canon[i] {
				t.Fatalf("trial %d: position %d diverged: %+v vs %+v", trial, i, p[i], canon[i])
			}
		}
	}
}

// TestSortNeighborsAllTied: a fully tied slice degenerates to pure id
// order.
func TestSortNeighborsAllTied(t *testing.T) {
	ns := []Neighbor{{ID: 4, Dist: 7}, {ID: 1, Dist: 7}, {ID: 3, Dist: 7}, {ID: 2, Dist: 7}}
	SortNeighbors(ns)
	for i, nb := range ns {
		if nb.ID != []int{1, 2, 3, 4}[i] {
			t.Fatalf("position %d: id %d", i, nb.ID)
		}
	}
}

// TestSortNeighborsAgreesWithByDistance: the two sort entry points share
// one contract.
func TestSortNeighborsAgreesWithByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := make([]Neighbor, 100)
	for i := range a {
		a[i] = Neighbor{ID: rng.Intn(20), Dist: float64(rng.Intn(5))}
	}
	b := append([]Neighbor(nil), a...)
	SortNeighbors(a)
	sort.Sort(ByDistance(b))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d: SortNeighbors %+v vs ByDistance %+v", i, a[i], b[i])
		}
	}
}
