package index

import (
	"sort"
	"testing"
)

func TestByDistanceOrdering(t *testing.T) {
	ns := []Neighbor{
		{ID: 3, Dist: 2},
		{ID: 1, Dist: 1},
		{ID: 2, Dist: 1},
		{ID: 0, Dist: 5},
	}
	sort.Sort(ByDistance(ns))
	wantIDs := []int{1, 2, 3, 0}
	for i, nb := range ns {
		if nb.ID != wantIDs[i] {
			t.Fatalf("position %d: id %d, want %d (ties must break by id)", i, nb.ID, wantIDs[i])
		}
	}
	if !sort.IsSorted(ByDistance(ns)) {
		t.Error("IsSorted should hold after sorting")
	}
}
