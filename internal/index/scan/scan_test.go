package scan

import (
	"testing"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/storage"
)

func TestScannerKNN(t *testing.T) {
	s := New(dist.L2, nil)
	pts := [][]float64{{0, 0}, {1, 0}, {5, 0}, {2, 0}}
	for i, p := range pts {
		s.Add(p, i+100)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	got := s.KNN([]float64{0, 0}, 2)
	if len(got) != 2 || got[0].ID != 100 || got[1].ID != 101 {
		t.Errorf("knn = %v", got)
	}
	if got := s.KNN([]float64{0, 0}, 0); got != nil {
		t.Error("k=0 should be nil")
	}
	if got := s.KNN([]float64{0, 0}, 10); len(got) != 4 {
		t.Errorf("k>n returned %d", len(got))
	}
}

func TestScannerRange(t *testing.T) {
	s := New(dist.L2, nil)
	pts := [][]float64{{0, 0}, {1, 0}, {5, 0}}
	for i, p := range pts {
		s.Add(p, i)
	}
	got := s.Range([]float64{0, 0}, 1.5)
	if len(got) != 2 {
		t.Errorf("range = %v", got)
	}
	if s.DistanceCalls() != 3 {
		t.Errorf("distance calls = %d", s.DistanceCalls())
	}
	s.ResetDistanceCalls()
	if s.DistanceCalls() != 0 {
		t.Error("reset failed")
	}
}

func TestScannerChargesFullFile(t *testing.T) {
	var tr storage.Tracker
	file := storage.NewPagedFile(100, &tr)
	for i := 0; i < 10; i++ {
		file.Append(make([]byte, 40)) // 2 per page → 5 pages
	}
	s := New(dist.L2, file)
	for i := 0; i < 10; i++ {
		s.Add([]float64{float64(i)}, i)
	}
	tr.Reset()
	s.KNN([]float64{0}, 1)
	if tr.PageAccesses() != 5 {
		t.Errorf("scan charged %d pages, want 5", tr.PageAccesses())
	}
}
