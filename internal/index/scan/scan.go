// Package scan provides the sequential-scan baseline of the paper's
// efficiency evaluation (§5.4, "Vect. Set seq. scan"): every query reads
// the whole object file and evaluates the exact distance for every
// object.
package scan

import (
	"sort"

	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/storage"
)

// Scanner answers similarity queries by exhaustive comparison.
type Scanner[T any] struct {
	dist    func(T, T) float64
	objects []T
	ids     []int
	file    *storage.PagedFile // optional: charged once per scan
	calls   int64
}

// New returns an empty scanner with the given distance function. If file
// is non-nil, each query charges a full sequential read of it.
func New[T any](dist func(T, T) float64, file *storage.PagedFile) *Scanner[T] {
	return &Scanner[T]{dist: dist, file: file}
}

// Add registers an object under the given id.
func (s *Scanner[T]) Add(obj T, id int) {
	s.objects = append(s.objects, obj)
	s.ids = append(s.ids, id)
}

// Len returns the number of registered objects.
func (s *Scanner[T]) Len() int { return len(s.objects) }

// DistanceCalls returns the cumulative number of distance evaluations.
func (s *Scanner[T]) DistanceCalls() int64 { return s.calls }

// ResetDistanceCalls zeroes the distance counter.
func (s *Scanner[T]) ResetDistanceCalls() { s.calls = 0 }

func (s *Scanner[T]) chargeScan() {
	if s.file != nil {
		s.file.Scan(func(int, []byte) {})
	}
}

// KNN returns the k nearest objects to q in distance order.
func (s *Scanner[T]) KNN(q T, k int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	s.chargeScan()
	all := make([]index.Neighbor, len(s.objects))
	for i, obj := range s.objects {
		s.calls++
		all[i] = index.Neighbor{ID: s.ids[i], Dist: s.dist(q, obj)}
	}
	sort.Sort(index.ByDistance(all))
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Range returns all objects within eps of q in distance order.
func (s *Scanner[T]) Range(q T, eps float64) []index.Neighbor {
	s.chargeScan()
	var out []index.Neighbor
	for i, obj := range s.objects {
		s.calls++
		if d := s.dist(q, obj); d <= eps {
			out = append(out, index.Neighbor{ID: s.ids[i], Dist: d})
		}
	}
	sort.Sort(index.ByDistance(out))
	return out
}
