// Package scan provides the sequential-scan baseline of the paper's
// efficiency evaluation (§5.4, "Vect. Set seq. scan"): every query reads
// the whole object file and evaluates the exact distance for every
// object.
package scan

import (
	"sync/atomic"

	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/storage"
)

// Scanner answers similarity queries by exhaustive comparison.
type Scanner[T any] struct {
	dist    func(T, T) float64
	objects []T
	ids     []int
	file    *storage.PagedFile // optional: charged once per scan
	workers int
	calls   atomic.Int64
}

// New returns an empty scanner with the given distance function. If file
// is non-nil, each query charges a full sequential read of it.
func New[T any](dist func(T, T) float64, file *storage.PagedFile) *Scanner[T] {
	return &Scanner[T]{dist: dist, file: file, workers: 1}
}

// SetWorkers sets the number of workers evaluating distances per query
// (n ≤ 0 consults VOXSET_WORKERS, defaulting to 1). With more than one
// worker the distance function must be safe for concurrent calls.
// Results are identical at any setting.
func (s *Scanner[T]) SetWorkers(n int) {
	s.workers = parallel.Workers(n, 1)
}

// Add registers an object under the given id.
func (s *Scanner[T]) Add(obj T, id int) {
	s.objects = append(s.objects, obj)
	s.ids = append(s.ids, id)
}

// Len returns the number of registered objects.
func (s *Scanner[T]) Len() int { return len(s.objects) }

// DistanceCalls returns the cumulative number of distance evaluations.
func (s *Scanner[T]) DistanceCalls() int64 { return s.calls.Load() }

// ResetDistanceCalls zeroes the distance counter.
func (s *Scanner[T]) ResetDistanceCalls() { s.calls.Store(0) }

func (s *Scanner[T]) chargeScan() {
	if s.file != nil {
		s.file.Scan(func(int, []byte) {})
	}
}

// distances evaluates the distance from q to every object, in parallel
// when configured.
func (s *Scanner[T]) distances(q T) []float64 {
	s.calls.Add(int64(len(s.objects)))
	out := make([]float64, len(s.objects))
	parallel.ForEach(len(s.objects), s.workers, func(i int) {
		out[i] = s.dist(q, s.objects[i])
	})
	return out
}

// KNN returns the k nearest objects to q in (distance, id) order.
func (s *Scanner[T]) KNN(q T, k int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	s.chargeScan()
	dists := s.distances(q)
	all := make([]index.Neighbor, len(s.objects))
	for i := range s.objects {
		all[i] = index.Neighbor{ID: s.ids[i], Dist: dists[i]}
	}
	index.SortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Range returns all objects within eps of q in (distance, id) order.
func (s *Scanner[T]) Range(q T, eps float64) []index.Neighbor {
	s.chargeScan()
	dists := s.distances(q)
	var out []index.Neighbor
	for i := range s.objects {
		if dists[i] <= eps {
			out = append(out, index.Neighbor{ID: s.ids[i], Dist: dists[i]})
		}
	}
	index.SortNeighbors(out)
	return out
}
