// Package geom provides the small 3-D linear-algebra substrate used by the
// voxelization, normalization and feature-extraction layers: vectors,
// matrices, axis-aligned boxes, the 48-element symmetry group of the cube
// and a Jacobi eigensolver for principal-axis transforms.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector of float64 components.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Mul returns the componentwise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the scalar product v·u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the vector product v × u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and u.
func (v Vec3) Dist(u Vec3) float64 { return v.Sub(u).Norm() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Min returns the componentwise minimum of v and u.
func (v Vec3) Min(u Vec3) Vec3 {
	return Vec3{math.Min(v.X, u.X), math.Min(v.Y, u.Y), math.Min(v.Z, u.Z)}
}

// Max returns the componentwise maximum of v and u.
func (v Vec3) Max(u Vec3) Vec3 {
	return Vec3{math.Max(v.X, u.X), math.Max(v.Y, u.Y), math.Max(v.Z, u.Z)}
}

// Abs returns the componentwise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// Component returns the i-th component of v (0 = X, 1 = Y, 2 = Z).
func (v Vec3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("geom: invalid component index %d", i))
}

// SetComponent returns a copy of v with the i-th component replaced.
func (v Vec3) SetComponent(i int, val float64) Vec3 {
	switch i {
	case 0:
		v.X = val
	case 1:
		v.Y = val
	case 2:
		v.Z = val
	default:
		panic(fmt.Sprintf("geom: invalid component index %d", i))
	}
	return v
}

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 {
	return math.Max(v.X, math.Max(v.Y, v.Z))
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// ApproxEqual reports whether v and u agree within eps in every component.
func (v Vec3) ApproxEqual(u Vec3, eps float64) bool {
	d := v.Sub(u).Abs()
	return d.X <= eps && d.Y <= eps && d.Z <= eps
}
