package geom

import "math"

// AABB is an axis-aligned bounding box described by its minimum and
// maximum corners. A box with any Min component strictly greater than the
// corresponding Max component is empty.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the canonical empty box (+inf mins, -inf maxs), the
// identity element for Union.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Box returns the AABB spanned by the two corner points.
func Box(a, b Vec3) AABB { return AABB{Min: a.Min(b), Max: a.Max(b)} }

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Size returns the extents of the box in each dimension (zero for empty).
func (b AABB) Size() Vec3 {
	if b.IsEmpty() {
		return Vec3{}
	}
	return b.Max.Sub(b.Min)
}

// Center returns the center point of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Volume returns the volume of the box (zero for empty boxes).
func (b AABB) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Contains reports whether the point p lies inside or on the boundary.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	if b.IsEmpty() {
		return c
	}
	if c.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// Intersect returns the intersection of b and c (possibly empty).
func (b AABB) Intersect(c AABB) AABB {
	return AABB{Min: b.Min.Max(c.Min), Max: b.Max.Min(c.Max)}
}

// Intersects reports whether b and c share at least one point.
func (b AABB) Intersects(c AABB) bool { return !b.Intersect(c).IsEmpty() }

// Expand grows the box by d in every direction.
func (b AABB) Expand(d float64) AABB {
	e := Vec3{d, d, d}
	return AABB{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// AddPoint returns the smallest box containing b and the point p.
func (b AABB) AddPoint(p Vec3) AABB {
	if b.IsEmpty() {
		return AABB{Min: p, Max: p}
	}
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Transform returns the AABB of the image of b under the affine map a.
func (b AABB) Transform(a Affine) AABB {
	if b.IsEmpty() {
		return b
	}
	out := EmptyAABB()
	for i := 0; i < 8; i++ {
		c := Vec3{b.Min.X, b.Min.Y, b.Min.Z}
		if i&1 != 0 {
			c.X = b.Max.X
		}
		if i&2 != 0 {
			c.Y = b.Max.Y
		}
		if i&4 != 0 {
			c.Z = b.Max.Z
		}
		out = out.AddPoint(a.Apply(c))
	}
	return out
}
