package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigen3Diagonal(t *testing.T) {
	m := Mat3{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	vals, vecs := SymEigen3(m)
	want := [3]float64{3, 2, 1}
	for i := range vals {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	// Leading eigenvector must be ±e_x.
	v0 := vecs.Col(0)
	if math.Abs(math.Abs(v0.X)-1) > 1e-10 {
		t.Errorf("leading eigenvector = %v", v0)
	}
}

func TestSymEigen3ReconstructsMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var m Mat3
		for i := 0; i < 3; i++ {
			for j := i; j < 3; j++ {
				x := rng.NormFloat64() * 10
				m[i][j] = x
				m[j][i] = x
			}
		}
		vals, vecs := SymEigen3(m)
		// Check m·v_i = λ_i·v_i for each eigenpair.
		for i := 0; i < 3; i++ {
			v := vecs.Col(i)
			mv := m.MulVec(v)
			lv := v.Scale(vals[i])
			if !mv.ApproxEqual(lv, 1e-7*(1+math.Abs(vals[i]))) {
				t.Fatalf("trial %d: m·v=%v λ·v=%v (λ=%v)", trial, mv, lv, vals[i])
			}
		}
		// Eigenvectors must be orthonormal.
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				d := vecs.Col(i).Dot(vecs.Col(j))
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(d-want) > 1e-9 {
					t.Fatalf("trial %d: v%d·v%d = %v", trial, i, j, d)
				}
			}
		}
		// Eigenvalues sorted descending.
		if vals[0] < vals[1] || vals[1] < vals[2] {
			t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, vals)
		}
	}
}

func TestCovarianceSimple(t *testing.T) {
	pts := []Vec3{{-1, 0, 0}, {1, 0, 0}}
	mean, cov := Covariance(pts)
	if mean != (Vec3{}) {
		t.Errorf("mean = %v", mean)
	}
	if cov[0][0] != 1 || cov[1][1] != 0 || cov[2][2] != 0 {
		t.Errorf("cov = %v", cov)
	}
}

func TestCovarianceEmpty(t *testing.T) {
	mean, cov := Covariance(nil)
	if mean != (Vec3{}) || cov != (Mat3{}) {
		t.Error("empty covariance should be zero")
	}
}

func TestPrincipalAxisOfElongatedCloud(t *testing.T) {
	// Points stretched along (1,1,0): the leading eigenvector must align
	// with that diagonal.
	rng := rand.New(rand.NewSource(7))
	var pts []Vec3
	dir := V(1, 1, 0).Normalize()
	for i := 0; i < 500; i++ {
		p := dir.Scale(rng.NormFloat64() * 10)
		p = p.Add(V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.1))
		pts = append(pts, p)
	}
	_, cov := Covariance(pts)
	_, vecs := SymEigen3(cov)
	lead := vecs.Col(0)
	if math.Abs(math.Abs(lead.Dot(dir))-1) > 0.01 {
		t.Errorf("leading axis %v not aligned with %v", lead, dir)
	}
}
