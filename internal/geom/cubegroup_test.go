package geom

import (
	"math"
	"testing"
)

func TestCubeGroupSizes(t *testing.T) {
	if got := len(Rotations90()); got != 24 {
		t.Fatalf("|rotations| = %d, want 24", got)
	}
	if got := len(RotoReflections()); got != 48 {
		t.Fatalf("|rotoreflections| = %d, want 48", got)
	}
}

func TestCubeGroupElementsDistinct(t *testing.T) {
	seen := map[CubeSym]bool{}
	for _, s := range RotoReflections() {
		if seen[s] {
			t.Fatalf("duplicate element %v", s)
		}
		seen[s] = true
	}
}

func TestCubeGroupDeterminants(t *testing.T) {
	for _, s := range Rotations90() {
		if d := s.Matrix().Det(); math.Abs(d-1) > 1e-12 {
			t.Errorf("rotation det = %v", d)
		}
		if s.Det() != 1 {
			t.Errorf("Det() = %d for rotation", s.Det())
		}
	}
	nrefl := 0
	for _, s := range RotoReflections() {
		if !s.IsRotation() {
			nrefl++
			if d := s.Matrix().Det(); math.Abs(d+1) > 1e-12 {
				t.Errorf("rotoreflection det = %v", d)
			}
		}
	}
	if nrefl != 24 {
		t.Errorf("number of rotoreflections = %d, want 24", nrefl)
	}
}

func TestCubeGroupClosure(t *testing.T) {
	set := map[CubeSym]bool{}
	for _, s := range Rotations90() {
		set[s] = true
	}
	for _, a := range Rotations90() {
		for _, b := range Rotations90() {
			if !set[a.Compose(b)] {
				t.Fatalf("rotation group not closed: %v ∘ %v", a, b)
			}
		}
	}
}

func TestCubeGroupInverse(t *testing.T) {
	id := CubeSym{Perm: [3]int{0, 1, 2}, Sign: [3]int{1, 1, 1}}
	for _, s := range RotoReflections() {
		if got := s.Compose(s.Inverse()); got != id {
			t.Fatalf("s∘s⁻¹ = %v for %v", got, s)
		}
		if got := s.Inverse().Compose(s); got != id {
			t.Fatalf("s⁻¹∘s = %v for %v", got, s)
		}
	}
}

func TestCubeSymApplyMatchesMatrix(t *testing.T) {
	v := V(1, 2, 3)
	for _, s := range RotoReflections() {
		a := s.Apply(v)
		b := s.Matrix().MulVec(v)
		if !a.ApproxEqual(b, 1e-12) {
			t.Fatalf("Apply %v != Matrix·v %v for %v", a, b, s)
		}
	}
}

func TestCubeSymApplyInts(t *testing.T) {
	for _, s := range RotoReflections() {
		x, y, z := s.ApplyInts(1, 2, 3)
		v := s.Apply(V(1, 2, 3))
		if float64(x) != v.X || float64(y) != v.Y || float64(z) != v.Z {
			t.Fatalf("ApplyInts (%d,%d,%d) != Apply %v", x, y, z, v)
		}
	}
}

func TestCubeSymComposeMatchesMatrixProduct(t *testing.T) {
	v := V(2, -3, 5)
	syms := RotoReflections()
	for i := 0; i < len(syms); i += 7 {
		for j := 0; j < len(syms); j += 5 {
			a, b := syms[i], syms[j]
			got := a.Compose(b).Apply(v)
			want := a.Apply(b.Apply(v))
			if !got.ApproxEqual(want, 1e-12) {
				t.Fatalf("compose mismatch: %v vs %v", got, want)
			}
		}
	}
}
