package geom

import (
	"math"
	"sort"
)

// SymEigen3 computes the eigenvalues and eigenvectors of the symmetric
// 3×3 matrix m using the cyclic Jacobi method. Eigenvalues are returned in
// descending order; vecs.Col(i) is the unit eigenvector of vals[i].
//
// It is used by the principal-axis transform (paper §3.2) on the 3×3
// covariance matrix of the occupied voxel coordinates.
func SymEigen3(m Mat3) (vals [3]float64, vecs Mat3) {
	a := m
	v := Identity3()
	for sweep := 0; sweep < 64; sweep++ {
		off := a[0][1]*a[0][1] + a[0][2]*a[0][2] + a[1][2]*a[1][2]
		if off < 1e-30 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				if a[p][q] == 0 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply the Givens rotation G(p,q,θ): a = Gᵀ·a·G.
				var g Mat3
				g = Identity3()
				g[p][p], g[q][q] = c, c
				g[p][q], g[q][p] = s, -s
				a = g.Transpose().Mul(a).Mul(g)
				a[p][q], a[q][p] = 0, 0 // kill round-off
				v = v.Mul(g)
			}
		}
	}

	type ev struct {
		val float64
		vec Vec3
	}
	evs := []ev{
		{a[0][0], v.Col(0)},
		{a[1][1], v.Col(1)},
		{a[2][2], v.Col(2)},
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].val > evs[j].val })
	for i, e := range evs {
		vals[i] = e.val
		vecs[0][i] = e.vec.X
		vecs[1][i] = e.vec.Y
		vecs[2][i] = e.vec.Z
	}
	return vals, vecs
}

// Covariance returns the mean and the 3×3 covariance matrix of the points.
// An empty slice yields the zero mean and zero matrix.
func Covariance(pts []Vec3) (mean Vec3, cov Mat3) {
	if len(pts) == 0 {
		return Vec3{}, Mat3{}
	}
	for _, p := range pts {
		mean = mean.Add(p)
	}
	mean = mean.Scale(1 / float64(len(pts)))
	for _, p := range pts {
		d := p.Sub(mean)
		c := [3]float64{d.X, d.Y, d.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				cov[i][j] += c[i] * c[j]
			}
		}
	}
	n := float64(len(pts))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			cov[i][j] /= n
		}
	}
	return mean, cov
}
