package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		// Cross product is orthogonal to both inputs (up to round-off
		// relative to magnitudes).
		tol := 1e-9 * (1 + a.Norm()*b.Norm()*(a.Norm()+b.Norm()))
		return math.Abs(c.Dot(a)) <= tol && math.Abs(c.Dot(b)) <= tol
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVecNormalize(t *testing.T) {
	v := V(3, 4, 0).Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("normalized length = %v", v.Norm())
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Errorf("zero vector should normalize to itself, got %v", z)
	}
}

func TestVecComponentAccess(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.SetComponent(1, -1); got != V(7, -1, 9) {
		t.Errorf("SetComponent = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Component(3) should panic")
		}
	}()
	v.Component(3)
}

func TestVecMinMaxAbs(t *testing.T) {
	a, b := V(1, -2, 5), V(0, 3, -7)
	if got := a.Min(b); got != V(0, -2, -7) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(1, 3, 5) {
		t.Errorf("Max = %v", got)
	}
	if got := b.Abs(); got != V(0, 3, 7) {
		t.Errorf("Abs = %v", got)
	}
	if got := a.MaxComponent(); got != 5 {
		t.Errorf("MaxComponent = %v", got)
	}
}

func TestMat3MulVecIdentity(t *testing.T) {
	v := V(1, 2, 3)
	if got := Identity3().MulVec(v); got != v {
		t.Errorf("I·v = %v", got)
	}
}

func TestMat3MulAssociativeWithVec(t *testing.T) {
	f := func(vals [9]float64, wals [9]float64, x, y, z float64) bool {
		var m, n Mat3
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] = clamp(vals[3*i+j])
				n[i][j] = clamp(wals[3*i+j])
			}
		}
		v := V(clamp(x), clamp(y), clamp(z))
		lhs := m.Mul(n).MulVec(v)
		rhs := m.MulVec(n.MulVec(v))
		return lhs.ApproxEqual(rhs, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func TestMat3Det(t *testing.T) {
	if got := Identity3().Det(); got != 1 {
		t.Errorf("det(I) = %v", got)
	}
	m := Mat3{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	if got := m.Det(); got != 24 {
		t.Errorf("det(diag(2,3,4)) = %v", got)
	}
	r := RotationZ(0.7)
	if math.Abs(r.Det()-1) > 1e-12 {
		t.Errorf("det(Rz) = %v", r.Det())
	}
}

func TestRotationMatricesOrthogonal(t *testing.T) {
	for _, m := range []Mat3{RotationX(0.3), RotationY(1.1), RotationZ(-2.0)} {
		p := m.Mul(m.Transpose())
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(p[i][j]-want) > 1e-12 {
					t.Errorf("m·mᵀ[%d][%d] = %v", i, j, p[i][j])
				}
			}
		}
	}
}

func TestAffineComposeApply(t *testing.T) {
	a := Translate(V(1, 0, 0))
	b := Rotate(RotationZ(math.Pi / 2))
	// (a∘b)(x) = a(b(x)): rotate (1,0,0) to (0,1,0), then translate.
	got := a.Compose(b).Apply(V(1, 0, 0))
	if !got.ApproxEqual(V(1, 1, 0), 1e-12) {
		t.Errorf("compose apply = %v", got)
	}
}

func TestAffineInverse(t *testing.T) {
	a := Translate(V(1, 2, 3)).Compose(Rotate(RotationY(0.8))).Compose(ScaleAffine(V(2, 3, 0.5)))
	inv := a.Inverse()
	pts := []Vec3{{0, 0, 0}, {1, 1, 1}, {-4, 2, 9}}
	for _, p := range pts {
		back := inv.Apply(a.Apply(p))
		if !back.ApproxEqual(p, 1e-9) {
			t.Errorf("inverse round-trip %v = %v", p, back)
		}
	}
}

func TestAffineInverseSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for singular transform")
		}
	}()
	ScaleAffine(V(1, 0, 1)).Inverse()
}
