package geom

// CubeSym is one element of the symmetry group of the axis-aligned cube:
// a signed axis permutation. Output component i takes input component
// Perm[i], multiplied by Sign[i] (±1). The 24 elements with determinant +1
// are the proper 90°-rotations; the full group of 48 adds the
// rotoreflections.
//
// The paper (§3.2) considers 24 rotation positions per CAD part, or 24·2 =
// 48 when reflection invariance is enabled.
type CubeSym struct {
	Perm [3]int
	Sign [3]int
}

// Apply maps the vector v through the symmetry.
func (s CubeSym) Apply(v Vec3) Vec3 {
	var out Vec3
	for i := 0; i < 3; i++ {
		out = out.SetComponent(i, float64(s.Sign[i])*v.Component(s.Perm[i]))
	}
	return out
}

// ApplyInts maps integer lattice coordinates through the symmetry.
func (s CubeSym) ApplyInts(x, y, z int) (int, int, int) {
	in := [3]int{x, y, z}
	var out [3]int
	for i := 0; i < 3; i++ {
		out[i] = s.Sign[i] * in[s.Perm[i]]
	}
	return out[0], out[1], out[2]
}

// Matrix returns the symmetry as a 3×3 signed permutation matrix.
func (s CubeSym) Matrix() Mat3 {
	var m Mat3
	for i := 0; i < 3; i++ {
		m[i][s.Perm[i]] = float64(s.Sign[i])
	}
	return m
}

// Det returns the determinant (+1 for rotations, -1 for rotoreflections).
func (s CubeSym) Det() int {
	if s.IsRotation() {
		return 1
	}
	return -1
}

// Compose returns the symmetry "s after t": (s∘t)(v) = s(t(v)).
func (s CubeSym) Compose(t CubeSym) CubeSym {
	var r CubeSym
	for i := 0; i < 3; i++ {
		r.Perm[i] = t.Perm[s.Perm[i]]
		r.Sign[i] = s.Sign[i] * t.Sign[s.Perm[i]]
	}
	return r
}

// Inverse returns the inverse symmetry.
func (s CubeSym) Inverse() CubeSym {
	var r CubeSym
	for i := 0; i < 3; i++ {
		r.Perm[s.Perm[i]] = i
		r.Sign[s.Perm[i]] = s.Sign[i]
	}
	return r
}

// IsRotation reports whether s is a proper rotation (det = +1).
func (s CubeSym) IsRotation() bool {
	parity := permParity(s.Perm)
	signs := s.Sign[0] * s.Sign[1] * s.Sign[2]
	return parity*signs == 1
}

func permParity(p [3]int) int {
	inv := 0
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if p[i] > p[j] {
				inv++
			}
		}
	}
	if inv%2 == 0 {
		return 1
	}
	return -1
}

var (
	rotations48 []CubeSym
	rotations24 []CubeSym
)

func init() {
	perms := [][3]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	for _, p := range perms {
		for bits := 0; bits < 8; bits++ {
			s := CubeSym{Perm: p}
			for i := 0; i < 3; i++ {
				if bits&(1<<i) != 0 {
					s.Sign[i] = -1
				} else {
					s.Sign[i] = 1
				}
			}
			rotations48 = append(rotations48, s)
			if s.IsRotation() {
				rotations24 = append(rotations24, s)
			}
		}
	}
}

// Rotations90 returns the 24 proper 90°-rotations of the cube.
func Rotations90() []CubeSym { return rotations24 }

// RotoReflections returns all 48 signed axis permutations (rotations and
// rotoreflections).
func RotoReflections() []CubeSym { return rotations48 }
