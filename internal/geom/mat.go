package geom

import (
	"fmt"
	"math"
)

// Mat3 is a row-major 3×3 matrix.
type Mat3 [3][3]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Col returns the j-th column of m as a vector.
func (m Mat3) Col(j int) Vec3 { return Vec3{m[0][j], m[1][j], m[2][j]} }

// Row returns the i-th row of m as a vector.
func (m Mat3) Row(i int) Vec3 { return Vec3{m[i][0], m[i][1], m[i][2]} }

// RotationX returns the rotation matrix about the x-axis by angle rad.
func RotationX(rad float64) Mat3 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat3{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}

// RotationY returns the rotation matrix about the y-axis by angle rad.
func RotationY(rad float64) Mat3 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat3{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// RotationZ returns the rotation matrix about the z-axis by angle rad.
func RotationZ(rad float64) Mat3 {
	c, s := math.Cos(rad), math.Sin(rad)
	return Mat3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

// Affine is an affine map x ↦ M·x + T.
type Affine struct {
	M Mat3
	T Vec3
}

// IdentityAffine returns the identity transform.
func IdentityAffine() Affine { return Affine{M: Identity3()} }

// Apply maps the point v through the affine transform.
func (a Affine) Apply(v Vec3) Vec3 { return a.M.MulVec(v).Add(a.T) }

// Compose returns the transform "a after b": x ↦ a(b(x)).
func (a Affine) Compose(b Affine) Affine {
	return Affine{M: a.M.Mul(b.M), T: a.M.MulVec(b.T).Add(a.T)}
}

// Translate returns the pure translation by t.
func Translate(t Vec3) Affine { return Affine{M: Identity3(), T: t} }

// ScaleAffine returns the anisotropic scaling transform with factors s.
func ScaleAffine(s Vec3) Affine {
	return Affine{M: Mat3{{s.X, 0, 0}, {0, s.Y, 0}, {0, 0, s.Z}}}
}

// Rotate returns the pure rotation transform with matrix m.
func Rotate(m Mat3) Affine { return Affine{M: m} }

// Inverse returns the inverse affine transform. It panics if M is singular.
func (a Affine) Inverse() Affine {
	d := a.M.Det()
	if d == 0 {
		panic("geom: affine transform is singular")
	}
	inv := Mat3{
		{
			a.M[1][1]*a.M[2][2] - a.M[1][2]*a.M[2][1],
			a.M[0][2]*a.M[2][1] - a.M[0][1]*a.M[2][2],
			a.M[0][1]*a.M[1][2] - a.M[0][2]*a.M[1][1],
		},
		{
			a.M[1][2]*a.M[2][0] - a.M[1][0]*a.M[2][2],
			a.M[0][0]*a.M[2][2] - a.M[0][2]*a.M[2][0],
			a.M[0][2]*a.M[1][0] - a.M[0][0]*a.M[1][2],
		},
		{
			a.M[1][0]*a.M[2][1] - a.M[1][1]*a.M[2][0],
			a.M[0][1]*a.M[2][0] - a.M[0][0]*a.M[2][1],
			a.M[0][0]*a.M[1][1] - a.M[0][1]*a.M[1][0],
		},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			inv[i][j] /= d
		}
	}
	return Affine{M: inv, T: inv.MulVec(a.T).Scale(-1)}
}

// String implements fmt.Stringer.
func (m Mat3) String() string {
	return fmt.Sprintf("[%v %v %v]", m.Row(0), m.Row(1), m.Row(2))
}
