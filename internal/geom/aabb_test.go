package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAABBEmpty(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Error("EmptyAABB should be empty")
	}
	if e.Volume() != 0 {
		t.Errorf("empty volume = %v", e.Volume())
	}
	if e.Size() != (Vec3{}) {
		t.Errorf("empty size = %v", e.Size())
	}
}

func TestAABBUnionIdentity(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 2, 3))
	if got := b.Union(EmptyAABB()); got != b {
		t.Errorf("b ∪ ∅ = %v", got)
	}
	if got := EmptyAABB().Union(b); got != b {
		t.Errorf("∅ ∪ b = %v", got)
	}
}

func TestAABBBoxNormalizesCorners(t *testing.T) {
	b := Box(V(5, -1, 2), V(1, 4, 0))
	if b.Min != V(1, -1, 0) || b.Max != V(5, 4, 2) {
		t.Errorf("Box corners = %v %v", b.Min, b.Max)
	}
}

func TestAABBContains(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	if !b.Contains(V(1, 1, 1)) || !b.Contains(V(0, 0, 0)) || !b.Contains(V(2, 2, 2)) {
		t.Error("box should contain interior and boundary points")
	}
	if b.Contains(V(3, 1, 1)) || b.Contains(V(1, -0.1, 1)) {
		t.Error("box should not contain outside points")
	}
}

func TestAABBIntersect(t *testing.T) {
	a := Box(V(0, 0, 0), V(2, 2, 2))
	b := Box(V(1, 1, 1), V(3, 3, 3))
	i := a.Intersect(b)
	if i.Min != V(1, 1, 1) || i.Max != V(2, 2, 2) {
		t.Errorf("intersection = %v", i)
	}
	c := Box(V(5, 5, 5), V(6, 6, 6))
	if a.Intersects(c) {
		t.Error("disjoint boxes must not intersect")
	}
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestAABBVolume(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 3, 4))
	if b.Volume() != 24 {
		t.Errorf("volume = %v", b.Volume())
	}
}

// Property: the intersection volume never exceeds either input volume, and
// union contains both inputs.
func TestAABBUnionIntersectProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 [3]float64) bool {
		a := Box(vecFrom(a0), vecFrom(a1))
		b := Box(vecFrom(b0), vecFrom(b1))
		u := a.Union(b)
		i := a.Intersect(b)
		if !u.Contains(a.Min) || !u.Contains(a.Max) || !u.Contains(b.Min) || !u.Contains(b.Max) {
			return false
		}
		if !i.IsEmpty() && (i.Volume() > a.Volume()+1e-9 || i.Volume() > b.Volume()+1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func vecFrom(a [3]float64) Vec3 {
	return V(clamp(a[0]), clamp(a[1]), clamp(a[2]))
}

func TestAABBTransform(t *testing.T) {
	b := Box(V(-1, -1, -1), V(1, 1, 1))
	// Rotating the unit cube by 45° about z expands x/y extent to √2.
	r := b.Transform(Rotate(RotationZ(math.Pi / 4)))
	want := math.Sqrt2
	if math.Abs(r.Max.X-want) > 1e-12 || math.Abs(r.Max.Y-want) > 1e-12 {
		t.Errorf("rotated box = %v", r)
	}
	if math.Abs(r.Max.Z-1) > 1e-12 {
		t.Errorf("z extent should be unchanged, got %v", r.Max.Z)
	}
}

func TestAABBExpandAddPoint(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1)).Expand(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("expand = %v", b)
	}
	c := EmptyAABB().AddPoint(V(1, 2, 3))
	if c.Min != V(1, 2, 3) || c.Max != V(1, 2, 3) {
		t.Errorf("AddPoint on empty = %v", c)
	}
	c = c.AddPoint(V(-1, 5, 0))
	if c.Min != V(-1, 2, 0) || c.Max != V(1, 5, 3) {
		t.Errorf("AddPoint = %v", c)
	}
}
