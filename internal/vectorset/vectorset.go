// Package vectorset provides the vector set object representation of
// paper §4: a CAD object is a set of at most k d-dimensional feature
// vectors. It implements the extended centroid (Definition 8) whose
// Euclidean distance, scaled by k, lower-bounds the minimal matching
// distance (Lemma 2) — the filter step of §4.3 — plus a compact binary
// serialization used by the page-storage simulation.
package vectorset

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Set is a vector set: up to MaxK() vectors of equal dimension.
type Set struct {
	Vectors [][]float64
}

// New wraps the given vectors as a Set, validating equal dimensions.
func New(vectors [][]float64) Set {
	if len(vectors) > 0 {
		d := len(vectors[0])
		for i, v := range vectors {
			if len(v) != d {
				panic(fmt.Sprintf("vectorset: vector %d has dim %d, want %d", i, len(v), d))
			}
		}
	}
	return Set{Vectors: vectors}
}

// Card returns the cardinality |X| of the set.
func (s Set) Card() int { return len(s.Vectors) }

// Dim returns the dimension of the vectors (0 for the empty set).
func (s Set) Dim() int {
	if len(s.Vectors) == 0 {
		return 0
	}
	return len(s.Vectors[0])
}

// Centroid computes the extended centroid C_{k,ω}(X) of Definition 8:
//
//	C_{k,ω}(X) = (Σ x_i + (k − |X|)·ω) / k.
//
// The set's cardinality must not exceed k. ω must have the set's
// dimension (any dimension is accepted for the empty set).
func (s Set) Centroid(k int, omega []float64) []float64 {
	if s.Card() > k {
		panic(fmt.Sprintf("vectorset: cardinality %d exceeds k = %d", s.Card(), k))
	}
	d := s.Dim()
	if d == 0 {
		d = len(omega)
	}
	if len(omega) != d {
		panic(fmt.Sprintf("vectorset: ω has dim %d, want %d", len(omega), d))
	}
	c := make([]float64, d)
	for _, v := range s.Vectors {
		for i := range c {
			c[i] += v[i]
		}
	}
	pad := float64(k - s.Card())
	for i := range c {
		c[i] = (c[i] + pad*omega[i]) / float64(k)
	}
	return c
}

// CentroidZero is Centroid with the paper's choice ω = 0.
func (s Set) CentroidZero(k, dim int) []float64 {
	return s.Centroid(k, make([]float64, dim))
}

// CentroidLowerBound returns k·‖C(X) − C(Y)‖₂ given two precomputed
// extended centroids: by Lemma 2 this never exceeds the minimal matching
// distance of the underlying sets (with Euclidean ground distance and
// w_ω weights).
func CentroidLowerBound(cx, cy []float64, k int) float64 {
	if len(cx) != len(cy) {
		panic("vectorset: centroid dimension mismatch")
	}
	sum := 0.0
	for i := range cx {
		d := cx[i] - cy[i]
		sum += d * d
	}
	return float64(k) * math.Sqrt(sum)
}

// ---------------------------------------------------------------------------
// Serialization (little-endian): uint32 cardinality, uint32 dimension,
// then cardinality·dimension float64 values.

// EncodedSize returns the serialized byte size of a set with the given
// cardinality and dimension.
func EncodedSize(card, dim int) int { return 8 + card*dim*8 }

// WriteTo serializes the set. It implements io.WriterTo.
func (s Set) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, EncodedSize(s.Card(), s.Dim()))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(s.Card()))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(s.Dim()))
	off := 8
	for _, v := range s.Vectors {
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(x))
			off += 8
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom deserializes a set previously written with WriteTo. It
// implements io.ReaderFrom.
func (s *Set) ReadFrom(r io.Reader) (int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	card := int(binary.LittleEndian.Uint32(hdr[0:4]))
	dim := int(binary.LittleEndian.Uint32(hdr[4:8]))
	// Bound each field separately before multiplying — the product of two
	// hostile 32-bit values can overflow int and bypass a combined check.
	const maxReasonable = 1 << 20
	if card < 0 || dim < 0 || card > maxReasonable || dim > maxReasonable ||
		card*dim > maxReasonable {
		return 8, fmt.Errorf("vectorset: implausible header card=%d dim=%d", card, dim)
	}
	body := make([]byte, card*dim*8)
	if _, err := io.ReadFull(r, body); err != nil {
		return 8, err
	}
	// Decode into one flat buffer and slice per-vector views over it —
	// two allocations per set instead of one per vector; the vectors
	// stay independent []float64 values for every caller.
	data := make([]float64, card*dim)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	s.Vectors = (Flat{Data: data, Card: card, Dim: dim}).Rows()
	return int64(8 + len(body)), nil
}
