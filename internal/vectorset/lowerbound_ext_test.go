// External test package: internal/dist imports vectorset for the flat
// kernels, so a test that exercises the Lemma 2 bound against the real
// matching distance must sit outside the package to avoid a cycle.
package vectorset_test

import (
	"math/rand"
	"testing"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/vectorset"
)

func TestCentroidLowerBoundsMatchingDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const k, d = 7, 6
	for trial := 0; trial < 300; trial++ {
		x := extRandVecs(rng, 1+rng.Intn(k), d)
		y := extRandVecs(rng, 1+rng.Intn(k), d)
		omega := make([]float64, d)
		if trial%2 == 1 { // alternate ω = 0 and random ω
			for i := range omega {
				omega[i] = rng.NormFloat64() * 5
			}
		}
		mm := dist.MatchingDistance(x, y, dist.L2, dist.WeightNormTo(omega))
		lb := vectorset.CentroidLowerBound(
			vectorset.New(x).Centroid(k, omega),
			vectorset.New(y).Centroid(k, omega),
			k,
		)
		if lb > mm+1e-9 {
			t.Fatalf("trial %d: lower bound %v exceeds matching distance %v", trial, lb, mm)
		}
	}
}

func extRandVecs(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() * 10
		}
	}
	return out
}
