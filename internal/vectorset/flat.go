package vectorset

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Flat is a vector set on one contiguous backing buffer: Card vectors of
// Dim components, row-major, so vector i occupies Data[i*Dim:(i+1)*Dim].
// It is the hot-path representation (DESIGN.md §10): one allocation per
// set instead of one per vector, cache-line-friendly sequential access
// for the distance kernels, and zero-copy Row views for every caller
// that still wants a []float64.
//
// A Flat is a view type: copying the struct aliases the same buffer.
// The aliasing rule is the same as for slices — whoever publishes a Flat
// into an immutable structure (a vsdb epoch view, a query result) must
// own Data exclusively and never write it afterwards.
type Flat struct {
	Data []float64 // len Card*Dim
	Card int
	Dim  int
}

// FlatFromRows copies rows into a freshly allocated flat buffer. Rows
// must be equal-dimensioned (panics otherwise, like New).
func FlatFromRows(rows [][]float64) Flat {
	if len(rows) == 0 {
		return Flat{}
	}
	d := len(rows[0])
	data := make([]float64, len(rows)*d)
	for i, v := range rows {
		if len(v) != d {
			panic(fmt.Sprintf("vectorset: vector %d has dim %d, want %d", i, len(v), d))
		}
		copy(data[i*d:], v)
	}
	return Flat{Data: data, Card: len(rows), Dim: d}
}

// Row returns the zero-copy view of vector i. The view is capped at the
// row boundary, so an append through it can never clobber the next row.
func (f Flat) Row(i int) []float64 {
	return f.Data[i*f.Dim : (i+1)*f.Dim : (i+1)*f.Dim]
}

// Rows materializes the [][]float64 face of the set: one new slice of
// headers whose rows alias the flat buffer. Callers that mutate through
// the rows mutate the set.
func (f Flat) Rows() [][]float64 {
	if f.Card == 0 {
		return nil
	}
	rows := make([][]float64, f.Card)
	for i := range rows {
		rows[i] = f.Row(i)
	}
	return rows
}

// Set wraps the flat buffer as a Set (rows alias the buffer).
func (f Flat) Set() Set { return Set{Vectors: f.Rows()} }

// Flat copies the set into the contiguous representation.
func (s Set) Flat() Flat { return FlatFromRows(s.Vectors) }

// Centroid computes the extended centroid C_{k,ω} (Definition 8) of the
// flat set, exactly like Set.Centroid: component sums accumulate in row
// order, so the result is bit-identical to the [][]float64 path.
func (f Flat) Centroid(k int, omega []float64) []float64 {
	d := f.Dim
	if d == 0 {
		d = len(omega)
	}
	return f.CentroidInto(make([]float64, d), k, omega)
}

// CentroidInto is Centroid writing into dst (len must be the centroid
// dimension); it performs no allocation and returns dst.
func (f Flat) CentroidInto(dst []float64, k int, omega []float64) []float64 {
	if f.Card > k {
		panic(fmt.Sprintf("vectorset: cardinality %d exceeds k = %d", f.Card, k))
	}
	d := f.Dim
	if d == 0 {
		d = len(omega)
	}
	if len(omega) != d || len(dst) != d {
		panic(fmt.Sprintf("vectorset: ω has dim %d, dst has dim %d, want %d", len(omega), len(dst), d))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < f.Card; i++ {
		row := f.Data[i*d : (i+1)*d]
		for j := range dst {
			dst[j] += row[j]
		}
	}
	pad := float64(k - f.Card)
	for j := range dst {
		dst[j] = (dst[j] + pad*omega[j]) / float64(k)
	}
	return dst
}

// ---------------------------------------------------------------------------
// Flat codec: the same wire format as Set.WriteTo/ReadFrom (uint32
// cardinality, uint32 dimension, card·dim little-endian float64), but
// decoding into one caller-controlled buffer. This is the zero-steady-
// state-allocation fetch path of the filter index.

// EncodedSize returns the serialized byte size of the set.
func (f Flat) EncodedSize() int { return EncodedSize(f.Card, f.Dim) }

// AppendEncode appends the serialized set to buf and returns the
// extended buffer (allocation-free when buf has capacity).
func (f Flat) AppendEncode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Card))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Dim))
	for _, x := range f.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// FlatHeader parses the cardinality and dimension of a serialized set
// without decoding the body, applying ReadFrom's sanity bounds.
func FlatHeader(rec []byte) (card, dim int, err error) {
	if len(rec) < 8 {
		return 0, 0, fmt.Errorf("vectorset: record of %d bytes has no header", len(rec))
	}
	card = int(binary.LittleEndian.Uint32(rec[0:4]))
	dim = int(binary.LittleEndian.Uint32(rec[4:8]))
	const maxReasonable = 1 << 20
	if card < 0 || dim < 0 || card > maxReasonable || dim > maxReasonable ||
		card*dim > maxReasonable {
		return 0, 0, fmt.Errorf("vectorset: implausible header card=%d dim=%d", card, dim)
	}
	if len(rec) < 8+card*dim*8 {
		return 0, 0, fmt.Errorf("vectorset: record of %d bytes, want %d", len(rec), 8+card*dim*8)
	}
	return card, dim, nil
}

// DecodeFlatInto decodes a serialized set into dst, which must have
// room for card·dim values (obtain the shape with FlatHeader); it
// performs no allocation. The returned Flat aliases dst.
func DecodeFlatInto(dst []float64, rec []byte) (Flat, error) {
	card, dim, err := FlatHeader(rec)
	if err != nil {
		return Flat{}, err
	}
	n := card * dim
	if len(dst) < n {
		return Flat{}, fmt.Errorf("vectorset: decode buffer holds %d values, want %d", len(dst), n)
	}
	dst = dst[:n]
	body := rec[8 : 8+n*8]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	return Flat{Data: dst, Card: card, Dim: dim}, nil
}

// DecodeFlat decodes a serialized set into a freshly allocated flat
// buffer (exactly one allocation).
func DecodeFlat(rec []byte) (Flat, error) {
	card, dim, err := FlatHeader(rec)
	if err != nil {
		return Flat{}, err
	}
	return DecodeFlatInto(make([]float64, card*dim), rec)
}
