package vectorset

import (
	"bytes"
	"testing"
)

// FuzzReadFrom exercises the vector set decoder with arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to the same bytes it consumed.
func FuzzReadFrom(f *testing.F) {
	var valid bytes.Buffer
	_, _ = New([][]float64{{1, 2, 3}, {4, 5, 6}}).WriteTo(&valid)
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:9])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		if _, err := s.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Canonical round trip: re-encoding the decoded set and decoding
		// again must be a fixpoint. (The raw input may differ in the
		// declared dimension of an empty set, which the encoder
		// canonicalizes to 0.)
		var buf bytes.Buffer
		n, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var s2 Set
		m, err := s2.ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of canonical encoding failed: %v", err)
		}
		if m != n || s2.Card() != s.Card() || s2.Dim() != s.Dim() {
			t.Fatalf("canonical round trip not a fixpoint: %d/%d bytes, card %d/%d",
				m, n, s2.Card(), s.Card())
		}
		for i := range s.Vectors {
			for j := range s.Vectors[i] {
				a, b := s.Vectors[i][j], s2.Vectors[i][j]
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatal("vector data changed in canonical round trip")
				}
			}
		}
	})
}
