package vectorset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidatesDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ragged vectors")
		}
	}()
	New([][]float64{{1, 2}, {3}})
}

func TestCardDim(t *testing.T) {
	s := New([][]float64{{1, 2, 3}, {4, 5, 6}})
	if s.Card() != 2 || s.Dim() != 3 {
		t.Errorf("card=%d dim=%d", s.Card(), s.Dim())
	}
	var e Set
	if e.Card() != 0 || e.Dim() != 0 {
		t.Error("empty set card/dim")
	}
}

func TestCentroidFullSet(t *testing.T) {
	s := New([][]float64{{0, 0}, {2, 4}})
	c := s.Centroid(2, []float64{0, 0})
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("centroid = %v", c)
	}
}

func TestCentroidPadsWithOmega(t *testing.T) {
	s := New([][]float64{{3, 3}})
	c := s.Centroid(3, []float64{6, 0})
	// (3 + 2·6)/3 = 5, (3 + 0)/3 = 1
	if c[0] != 5 || c[1] != 1 {
		t.Errorf("centroid = %v", c)
	}
}

func TestCentroidZeroOfEmptySet(t *testing.T) {
	var s Set
	c := s.CentroidZero(4, 6)
	for _, v := range c {
		if v != 0 {
			t.Errorf("empty-set centroid = %v", c)
		}
	}
}

func TestCentroidCardinalityExceedsKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New([][]float64{{1}, {2}}).Centroid(1, []float64{0})
}

func TestCentroidOmegaDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New([][]float64{{1, 2}}).Centroid(2, []float64{0})
}

// Lemma 2: k·‖C(X) − C(Y)‖₂ ≤ dist_mm(X, Y) with Euclidean ground
// distance and w_ω weights, for random sets and random ω.
// TestCentroidLowerBoundsMatchingDistance lives in lowerbound_ext_test.go
// (an external test package): it needs internal/dist, which now imports
// this package for the flat kernels, so an in-package test would cycle.

func randVecs(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() * 10
		}
	}
	return out
}

// The lower bound must be tight for identical sets and positive for sets
// with different centroids.
func TestCentroidLowerBoundProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randVecs(rng, 1+rng.Intn(5), 4)
		omega := make([]float64, 4)
		cx := New(x).Centroid(6, omega)
		return CentroidLowerBound(cx, cx, 6) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCentroidLowerBoundDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CentroidLowerBound([]float64{1}, []float64{1, 2}, 3)
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		s := New(randVecs(rng, rng.Intn(8), 6))
		if s.Card() == 0 {
			s = Set{} // exercise the empty path too
		}
		var buf bytes.Buffer
		n, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != EncodedSize(s.Card(), s.Dim()) {
			t.Fatalf("wrote %d bytes, want %d", n, EncodedSize(s.Card(), s.Dim()))
		}
		var back Set
		m, err := back.ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m != n {
			t.Fatalf("read %d bytes, wrote %d", m, n)
		}
		if back.Card() != s.Card() {
			t.Fatalf("cardinality %d vs %d", back.Card(), s.Card())
		}
		for i := range s.Vectors {
			for j := range s.Vectors[i] {
				if back.Vectors[i][j] != s.Vectors[i][j] {
					t.Fatal("vector data corrupted")
				}
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var s Set
	// Implausibly large header.
	hdr := []byte{0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f}
	if _, err := s.ReadFrom(bytes.NewReader(hdr)); err == nil {
		t.Error("expected error for implausible header")
	}
	// Truncated body.
	var buf bytes.Buffer
	orig := New([][]float64{{1, 2, 3}})
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := s.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated body")
	}
}

func TestEncodedSize(t *testing.T) {
	if EncodedSize(0, 0) != 8 {
		t.Error("empty set should be 8 bytes")
	}
	if EncodedSize(7, 6) != 8+7*6*8 {
		t.Error("size formula wrong")
	}
}

func TestCentroidSpecialValues(t *testing.T) {
	// NaN-free on normal input.
	s := New([][]float64{{1e300, -1e300}})
	c := s.Centroid(2, []float64{0, 0})
	if math.IsNaN(c[0]) || math.IsNaN(c[1]) {
		t.Error("centroid produced NaN")
	}
}
