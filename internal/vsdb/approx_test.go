package vsdb

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vectorset"
)

// testApprox is the tier configuration used across the approx tests:
// small enough to be fast, non-default seed so adoption tests catch a
// params mix-up.
func testApprox() *ApproxOptions {
	return &ApproxOptions{Bits: 128, Active: 12, Seed: 99, KNNFactor: 8, MinCandidates: 32, RangeCandidates: 64}
}

// randomApproxDB is randomDB with the approximate tier enabled.
func randomApproxDB(t *testing.T, seed int64, n, workers int) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db, err := Open(Config{Dim: 4, MaxCard: 5, Omega: []float64{0.3, -0.1, 0.7, 0.2},
		Workers: workers, Approx: testApprox()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Insert(uint64(i), randomQuery(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// Fold the inserts into the base: the sketch tier only proposes
	// base-resident candidates, so an uncompacted database would answer
	// everything through the (exact) delta scan.
	db.Compact()
	return db
}

// TestApproxDisabledIsExact: without Config.Approx the Approx methods
// are the exact engine, result for result.
func TestApproxDisabledIsExact(t *testing.T) {
	db := randomDB(t, 21, 150)
	if db.ApproxEnabled() {
		t.Fatal("ApproxEnabled without configuration")
	}
	rng := rand.New(rand.NewSource(5))
	qs := [][][]float64{randomQuery(rng), randomQuery(rng), randomQuery(rng)}
	for _, q := range qs {
		if got, want := db.KNNApprox(q, 7), db.KNN(q, 7); !reflect.DeepEqual(got, want) {
			t.Fatalf("KNNApprox differs from KNN:\n%v\n%v", got, want)
		}
		if got, want := db.RangeApprox(q, 2.5), db.Range(q, 2.5); !reflect.DeepEqual(got, want) {
			t.Fatalf("RangeApprox differs from Range:\n%v\n%v", got, want)
		}
	}
	if got, want := db.KNNBatchApprox(qs, 7), db.KNNBatch(qs, 7); !reflect.DeepEqual(got, want) {
		t.Fatal("KNNBatchApprox differs from KNNBatch")
	}
	if got, want := db.RangeBatchApprox(qs, 2.5), db.RangeBatch(qs, 2.5); !reflect.DeepEqual(got, want) {
		t.Fatal("RangeBatchApprox differs from RangeBatch")
	}
	if db.SketchCandidates() != 0 {
		t.Fatalf("exact-only workload proposed %d sketch candidates", db.SketchCandidates())
	}
}

// TestApproxExactDistancesWithMutations: across tombstones and delta
// objects, approximate results carry exact distances, never surface a
// deleted id, and always surface an identical delta-resident set at
// distance 0.
func TestApproxExactDistancesWithMutations(t *testing.T) {
	db := randomApproxDB(t, 31, 300, 2)
	// Tombstone a few base residents, then insert fresh delta objects.
	for id := uint64(0); id < 10; id++ {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(77))
	probe := randomQuery(rng)
	if err := db.Insert(9001, probe); err != nil {
		t.Fatal(err)
	}
	if db.DeltaLen() == 0 {
		t.Fatal("test expects the insert to land in the delta memtable")
	}

	got := db.KNNApprox(probe, 15)
	if len(got) != 15 {
		t.Fatalf("got %d neighbors, want 15", len(got))
	}
	if got[0].ID != 9001 || got[0].Dist != 0 {
		t.Fatalf("identical delta object not first at distance 0: %+v", got[0])
	}
	for i, nb := range got {
		if nb.ID < 10 {
			t.Fatalf("deleted id %d surfaced", nb.ID)
		}
		if want := db.Distance(probe, db.Get(nb.ID)); nb.Dist != want {
			t.Fatalf("neighbor %d: dist %v, exact %v", i, nb.Dist, want)
		}
		if i > 0 && (got[i-1].Dist > nb.Dist || (got[i-1].Dist == nb.Dist && got[i-1].ID >= nb.ID)) {
			t.Fatalf("results out of (dist, id) order at %d", i)
		}
	}
	for _, nb := range db.RangeApprox(probe, 2.0) {
		if nb.Dist > 2.0 || nb.ID < 10 {
			t.Fatalf("range hit %+v out of bounds", nb)
		}
		if want := db.Distance(probe, db.Get(nb.ID)); nb.Dist != want {
			t.Fatalf("range hit %d: dist %v, exact %v", nb.ID, nb.Dist, want)
		}
	}
}

// TestApproxDeterministicAcrossWorkers: identical databases at worker
// counts 1 and 4 answer approximate queries identically (the transcript
// contract the recall harness pins end to end).
func TestApproxDeterministicAcrossWorkers(t *testing.T) {
	a := randomApproxDB(t, 47, 250, 1)
	b := randomApproxDB(t, 47, 250, 4)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		q := randomQuery(rng)
		if ra, rb := a.KNNApprox(q, 9), b.KNNApprox(q, 9); !reflect.DeepEqual(ra, rb) {
			t.Fatalf("query %d: workers=1 and workers=4 disagree:\n%v\n%v", i, ra, rb)
		}
		if ra, rb := a.RangeApprox(q, 2.2), b.RangeApprox(q, 2.2); !reflect.DeepEqual(ra, rb) {
			t.Fatalf("range query %d: workers=1 and workers=4 disagree", i)
		}
	}
}

// TestApproxBatchMatchesSequential: the batch entry points answer each
// query exactly as the sequential ones at the same epoch.
func TestApproxBatchMatchesSequential(t *testing.T) {
	db := randomApproxDB(t, 53, 200, 4)
	rng := rand.New(rand.NewSource(9))
	qs := make([][][]float64, 7)
	for i := range qs {
		qs[i] = randomQuery(rng)
	}
	knn := db.KNNBatchApprox(qs, 6)
	rng2 := db.RangeBatchApprox(qs, 2.0)
	for i, q := range qs {
		if want := db.KNNApprox(q, 6); !reflect.DeepEqual(knn[i], want) {
			t.Fatalf("batch knn entry %d differs from sequential", i)
		}
		if want := db.RangeApprox(q, 2.0); !reflect.DeepEqual(rng2[i], want) {
			t.Fatalf("batch range entry %d differs from sequential", i)
		}
	}
}

// TestApproxSketchCandidatesCounter: the candidate gauge advances with
// approximate queries and survives compaction (harvested like the
// refinement counter).
func TestApproxSketchCandidatesCounter(t *testing.T) {
	db := randomApproxDB(t, 61, 200, 1)
	rng := rand.New(rand.NewSource(3))
	q := randomQuery(rng)
	db.KNNApprox(q, 5)
	before := db.SketchCandidates()
	if before <= 0 {
		t.Fatalf("counter %d after an approximate query, want > 0", before)
	}
	if err := db.Insert(5000, randomQuery(rng)); err != nil {
		t.Fatal(err)
	}
	db.Compact()
	if after := db.SketchCandidates(); after < before {
		t.Fatalf("counter shrank across compaction: %d → %d", before, after)
	}
}

// TestApproxPersistenceRoundTrip: Save with the tier enabled persists
// the sketch section; a Load under matching parameters adopts it and
// answers identically; Save → Load → Save stays a byte-level fixed
// point.
func TestApproxPersistenceRoundTrip(t *testing.T) {
	db := randomApproxDB(t, 71, 180, 2)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Decode(bytes.NewReader(buf.Bytes()), snapshot.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sketches == nil || snap.Sketches.Count != db.Len() {
		t.Fatalf("snapshot sketch section: %+v", snap.Sketches)
	}

	back, err := LoadWith(bytes.NewReader(buf.Bytes()), LoadOptions{Approx: testApprox()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5; i++ {
		q := randomQuery(rng)
		if got, want := back.KNNApprox(q, 8), db.KNNApprox(q, 8); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: loaded database disagrees:\n%v\n%v", i, got, want)
		}
	}
	var again bytes.Buffer
	if err := back.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("Save → Load → Save is not a fixed point with sketches")
	}

	// A load under different parameters must ignore the persisted table
	// (lazy rebuild) and still answer with exact distances.
	other := testApprox()
	other.Seed = 12345
	reb, err := LoadWith(bytes.NewReader(buf.Bytes()), LoadOptions{Approx: other})
	if err != nil {
		t.Fatal(err)
	}
	q := randomQuery(rng)
	for _, nb := range reb.KNNApprox(q, 5) {
		if want := reb.Distance(q, reb.Get(nb.ID)); nb.Dist != want {
			t.Fatalf("rebuilt-tier neighbor %d: dist %v, exact %v", nb.ID, nb.Dist, want)
		}
	}
}

// TestApproxPagedAdoptsPersistedSketches: a stream-built paged snapshot
// carries the sketch tail, and the mmap-backed database it opens answers
// exactly like a heap database over the same data and parameters.
func TestApproxPagedAdoptsPersistedSketches(t *testing.T) {
	const n = 220
	rng := rand.New(rand.NewSource(83))
	ids := make([]uint64, n)
	sets := make([][][]float64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
		sets[i] = randomQuery(rng)
	}
	cfg := Config{Dim: 4, MaxCard: 5, Omega: []float64{0.3, -0.1, 0.7, 0.2}}
	path := filepath.Join(t.TempDir(), "approx.vsnap")
	i := 0
	mapped, err := BulkBuildFromStream(path, cfg, 0, func() (uint64, vectorset.Flat, error) {
		if i == n {
			return 0, vectorset.Flat{}, io.EOF
		}
		i++
		return ids[i-1], vectorset.FlatFromRows(sets[i-1]), nil
	}, LoadOptions{Approx: testApprox()})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	r, err := snapshot.OpenPaged(path, snapshot.PagedReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasSketches() {
		r.Close()
		t.Fatal("stream-built snapshot carries no sketch tail")
	}
	r.Close()

	heap, err := Open(Config{Dim: 4, MaxCard: 5, Omega: []float64{0.3, -0.1, 0.7, 0.2}, Approx: testApprox()})
	if err != nil {
		t.Fatal(err)
	}
	if err := heap.BulkInsert(ids, sets); err != nil {
		t.Fatal(err)
	}
	qrng := rand.New(rand.NewSource(6))
	for qi := 0; qi < 8; qi++ {
		q := randomQuery(qrng)
		if got, want := mapped.KNNApprox(q, 10), heap.KNNApprox(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: mapped and heap tiers disagree:\n%v\n%v", qi, got, want)
		}
	}
	if mapped.SketchCandidates() == 0 {
		t.Fatal("mapped database proposed no candidates")
	}
}
