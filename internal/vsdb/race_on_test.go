//go:build race

package vsdb

// raceEnabled reports whether the race detector instruments this build.
// Instrumentation slows the open path 10-20×, so wall-clock assertions
// only hold in normal builds.
const raceEnabled = true
