package vsdb

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/voxset/voxset/internal/dist"
)

func randQuerySet(rng *rand.Rand, card, dim int) [][]float64 {
	set := make([][]float64, card)
	for i := range set {
		set[i] = make([]float64, dim)
		for j := range set[i] {
			set[i][j] = rng.NormFloat64()
		}
	}
	return set
}

// buildSetQueryDB returns a database with n random objects: half bulk-
// loaded into the base, half inserted live (delta), with a few deletes
// (tombstones) — every representation layer a partial scan must cover.
func buildSetQueryDB(t *testing.T, n, workers int) (*DB, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db, err := Open(Config{Dim: 3, MaxCard: 5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	half := n / 2
	ids := make([]uint64, half)
	sets := make([][][]float64, half)
	for i := 0; i < half; i++ {
		ids[i], sets[i] = uint64(i), randQuerySet(rng, 1+rng.Intn(5), 3)
	}
	if err := db.BulkInsert(ids, sets); err != nil {
		t.Fatal(err)
	}
	for i := half; i < n; i++ {
		if err := db.Insert(uint64(i), randQuerySet(rng, 1+rng.Intn(5), 3)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint64{3, uint64(half + 2)} {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	return db, rng
}

// TestKNNSetMinimalEqualsKNN: the zero SetQuery is the plain engine.
func TestKNNSetMinimalEqualsKNN(t *testing.T) {
	db, rng := buildSetQueryDB(t, 60, 1)
	defer db.Close()
	for trial := 0; trial < 10; trial++ {
		q := randQuerySet(rng, 1+rng.Intn(5), 3)
		if got, want := db.KNNSet(q, 7, SetQuery{}), db.KNN(q, 7); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: KNNSet(zero) %v != KNN %v", trial, got, want)
		}
		if got, want := db.RangeSet(q, 2.5, SetQuery{}), db.Range(q, 2.5); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: RangeSet(zero) %v != Range %v", trial, got, want)
		}
	}
}

// TestKNNSetPartialAgainstReference: the partial scan must agree with a
// direct per-object evaluation over IDs() + Get(), sorted (dist, id).
func TestKNNSetPartialAgainstReference(t *testing.T) {
	db, rng := buildSetQueryDB(t, 50, 1)
	defer db.Close()
	for trial := 0; trial < 8; trial++ {
		q := randQuerySet(rng, 2+rng.Intn(4), 3)
		for _, sq := range []SetQuery{
			{Partial: true},
			{Partial: true, I: 1},
			{Partial: true, I: 2},
			{Partial: true, I: 99}, // clamps to min(|q|, |obj|)
		} {
			want := make([]Neighbor, 0, db.Len())
			for _, id := range db.IDs() {
				set := db.Get(id)
				want = append(want, Neighbor{ID: id, Dist: dist.PartialMatching(q, set, dist.L2, sq.partialI(len(q), len(set)))})
			}
			sortNeighbors(want)
			k := 10
			if k > len(want) {
				k = len(want)
			}
			got := db.KNNSet(q, k, sq)
			if !reflect.DeepEqual(got, want[:k]) {
				t.Fatalf("trial %d %+v: KNNSet %v, reference %v", trial, sq, got, want[:k])
			}

			eps := want[len(want)/3].Dist
			wantRange := make([]Neighbor, 0)
			for _, nb := range want {
				if nb.Dist <= eps {
					wantRange = append(wantRange, nb)
				}
			}
			gotRange := db.RangeSet(q, eps, sq)
			if !reflect.DeepEqual(gotRange, wantRange) {
				t.Fatalf("trial %d %+v: RangeSet %v, reference %v", trial, sq, gotRange, wantRange)
			}
		}
	}
}

// TestKNNSetPartialWorkerInvariance: partial scans are deterministic
// and identical at any worker count.
func TestKNNSetPartialWorkerInvariance(t *testing.T) {
	db1, rng := buildSetQueryDB(t, 60, 1)
	defer db1.Close()
	db4, _ := buildSetQueryDB(t, 60, 4)
	defer db4.Close()
	for trial := 0; trial < 10; trial++ {
		q := randQuerySet(rng, 1+rng.Intn(5), 3)
		sq := SetQuery{Partial: true, I: 1 + trial%3}
		if got1, got4 := db1.KNNSet(q, 9, sq), db4.KNNSet(q, 9, sq); !reflect.DeepEqual(got1, got4) {
			t.Fatalf("trial %d: workers=1 %v, workers=4 %v", trial, got1, got4)
		}
	}
}

// TestKNNSetPartialEmptyAndEdge: empty queries and k past the database
// size behave like the other query paths.
func TestKNNSetPartialEmptyAndEdge(t *testing.T) {
	db, _ := buildSetQueryDB(t, 10, 2)
	defer db.Close()
	if got := db.KNNSet(nil, 5, SetQuery{Partial: true}); got != nil {
		t.Fatalf("empty query: got %v, want nil", got)
	}
	q := [][]float64{{0, 0, 0}}
	if got := db.KNNSet(q, 1000, SetQuery{Partial: true}); len(got) != db.Len() {
		t.Fatalf("k beyond size: got %d results, want %d", len(got), db.Len())
	}
	if got := db.KNNSet(q, 0, SetQuery{Partial: true}); got != nil {
		t.Fatalf("k=0: got %v, want nil", got)
	}
	// I=0 (auto) at i=min cardinality must rank the exact duplicate of a
	// stored set first at distance 0.
	stored := db.Get(db.IDs()[4])
	got := db.KNNSet(stored, 1, SetQuery{Partial: true})
	if len(got) != 1 || got[0].Dist != 0 {
		t.Fatalf("self query: got %v, want a distance-0 hit", got)
	}
}
