package vsdb

// Replication support (DESIGN.md §13): a follower runs a standby
// database with no WAL of its own — the primary's log is the one durable
// copy — and advances by strictly replaying the records the primary
// ships. Bootstrap replays the shard WAL in place (ReplayWALFile);
// steady state applies one shipped record at a time (ApplyRecord).

import (
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/voxset/voxset/internal/wal"
)

// ApplyRecord applies one replicated mutation to a standby database.
// Replay is strict: the record must carry the next sequence number
// (Epoch()+1) and must not conflict with the state it lands on —
// anything else means the replica stream and this database have
// diverged, and the error is the follower's cue to drop out rather than
// serve wrong answers.
func (db *DB) ApplyRecord(rec wal.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.cur.Load()
	if rec.Seq != v.seq+1 {
		return fmt.Errorf("vsdb: replicated record %d does not extend epoch %d", rec.Seq, v.seq)
	}
	nv, err := db.replayLocked(v, []wal.Record{rec})
	if err != nil {
		return fmt.Errorf("vsdb: applying replicated record: %w", err)
	}
	db.cur.Store(nv)
	db.maybeCompactLocked()
	return nil
}

// ReplayWALFile replays the records of the log at path that lie beyond
// the database's current epoch, without attaching the log — the follower
// bootstrap path: the standby adopts the shard's durable history
// (snapshot, then this call for the WAL suffix) and from then on tails
// the primary's shipped records.
//
// A missing log is an empty history (no-op). The log must belong to this
// database: its configuration must match, and its base sequence must not
// lie beyond the current epoch (a gap would mean mutations between
// snapshot and log are unrecoverable). A torn tail is left where it is —
// only fully framed records are replayed; the primary's own recovery
// truncates the tear.
func (db *DB) ReplayWALFile(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log != nil {
		return fmt.Errorf("vsdb: ReplayWALFile on a database with an attached WAL (%s)", db.log.file.Path())
	}
	v := db.cur.Load()
	cu, err := wal.OpenCursor(path, v.seq)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("vsdb: %w", err)
	}
	defer cu.Close()
	cfg := cu.Config()
	if !cfg.Matches(wal.Config{Dim: db.cfg.Dim, MaxCard: db.cfg.MaxCard, Omega: db.omega}) {
		return fmt.Errorf("vsdb: WAL %s header (dim=%d maxCard=%d) does not match database (dim=%d maxCard=%d) or ω differs",
			path, cfg.Dim, cfg.MaxCard, db.cfg.Dim, db.cfg.MaxCard)
	}
	if cfg.BaseSeq > v.seq {
		return fmt.Errorf("vsdb: WAL %s starts at sequence %d but the database is at epoch %d: mutations are missing", path, cfg.BaseSeq, v.seq)
	}
	var recs []wal.Record
	for {
		rec, err := cu.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("vsdb: %w", err)
		}
		recs = append(recs, rec)
	}
	nv, err := db.replayLocked(v, recs)
	if err != nil {
		return fmt.Errorf("vsdb: replaying WAL %s: %w", path, err)
	}
	if nv != v {
		db.cur.Store(nv)
		db.maybeCompactLocked()
	}
	return nil
}
