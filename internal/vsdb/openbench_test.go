package vsdb

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vectorset"
)

// BenchmarkOpen100k measures the VXSNAP02 cold start at the scale the
// <100ms serving contract is stated for: mmap, header and offsets
// validation, and the STR bulk load over the centroid region.
func BenchmarkOpen100k(b *testing.B) {
	const (
		n   = 100_000
		dim = 4
		mc  = 3
	)
	path := filepath.Join(b.TempDir(), "big.vsnap")
	w, err := snapshot.CreatePaged(path, snapshot.PagedWriterOptions{
		Dim: dim, MaxCard: mc, Omega: make([]float64, dim),
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	row := make([]float64, mc*dim)
	for i := 0; i < n; i++ {
		card := 1 + i%mc
		data := row[:card*dim]
		for j := range data {
			data[j] = rng.Float64() * 10
		}
		if err := w.Append(uint64(i+1), vectorset.Flat{Data: data, Card: card, Dim: dim}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := OpenFile(path, LoadOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}
