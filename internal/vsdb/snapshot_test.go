package vsdb

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/storage"
)

// randomDB builds a database of n random sets (dim, maxCard fixed) with a
// non-zero ω so the padded weight path is exercised too.
func randomDB(t *testing.T, seed int64, n int) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	omega := []float64{0.3, -0.1, 0.7, 0.2}
	db, err := Open(Config{Dim: 4, MaxCard: 5, Omega: omega})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		card := 1 + rng.Intn(5)
		set := make([][]float64, card)
		for j := range set {
			set[j] = make([]float64, 4)
			for k := range set[j] {
				set[j][k] = rng.NormFloat64()
			}
		}
		if err := db.Insert(uint64(i), set); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func randomQuery(rng *rand.Rand) [][]float64 {
	card := 1 + rng.Intn(5)
	q := make([][]float64, card)
	for j := range q {
		q[j] = make([]float64, 4)
		for k := range q[j] {
			q[j][k] = rng.NormFloat64()
		}
	}
	return q
}

// TestSnapshotSaveIsDeterministic: Save → Load → Save is a byte-level
// fixed point, the losslessness contract of DESIGN.md §7.
func TestSnapshotSaveIsDeterministic(t *testing.T) {
	db := randomDB(t, 1, 60)
	var a bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := back.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save → Load → Save changed the snapshot bytes")
	}
}

// A loaded database preserves every stored set exactly.
func TestSnapshotRoundTripLossless(t *testing.T) {
	db := randomDB(t, 2, 40)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), db.Len())
	}
	for _, id := range db.IDs() {
		a, b := db.Get(id), back.Get(id)
		if len(a) != len(b) {
			t.Fatalf("id %d: card %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("id %d: vector %d component %d differs", id, i, j)
				}
			}
		}
	}
}

// Deleting before saving exercises the tombstone-aware centroid path; the
// loaded database must contain exactly the live objects.
func TestSnapshotAfterDelete(t *testing.T) {
	db := randomDB(t, 3, 30)
	for id := uint64(0); id < 30; id += 3 {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), db.Len())
	}
	rng := rand.New(rand.NewSource(9))
	q := randomQuery(rng)
	a, b := db.KNN(q, 7), back.KNN(q, 7)
	if len(a) != len(b) {
		t.Fatalf("KNN sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("KNN[%d] = %+v vs %+v", i, a[i], b[i])
		}
	}
}

// A flipped byte anywhere in the snapshot is rejected via checksum.
func TestSnapshotFlippedByteRejected(t *testing.T) {
	db := randomDB(t, 4, 10)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Sample positions across the stream (the exhaustive sweep lives in
	// internal/snapshot; this guards the vsdb wrapping).
	for _, i := range []int{0, 7, 8, 20, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		} else if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("flip at byte %d: %v does not wrap snapshot.ErrCorrupt", i, err)
		}
	}
}

// Loading charges the configured tracker for the snapshot scan, extending
// the §5.4 cost model to persistence.
func TestLoadChargesTracker(t *testing.T) {
	db := randomDB(t, 5, 50)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	size := int64(buf.Len())
	var tr storage.Tracker
	back, err := LoadWith(&buf, LoadOptions{Tracker: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.BytesRead(); got != size {
		t.Errorf("bytes charged for load = %d, want %d", got, size)
	}
	wantPages := (size + storage.DefaultPageSize - 1) / storage.DefaultPageSize
	if got := tr.PageAccesses(); got != wantPages {
		t.Errorf("pages charged for load = %d, want %d", got, wantPages)
	}
	// The tracker stays attached: queries keep charging it.
	before := tr.PageAccesses()
	back.KNN(randomQuery(rand.New(rand.NewSource(6))), 3)
	if tr.PageAccesses() <= before {
		t.Error("query after load did not charge the tracker")
	}
}

// scanNeighbors is exhaustive ground truth: every stored object's exact
// minimal matching distance, ordered by the (dist, id) contract.
func scanNeighbors(db *DB, q [][]float64) []Neighbor {
	var out []Neighbor
	for _, id := range db.IDs() {
		out = append(out, Neighbor{ID: id, Dist: db.Distance(q, db.Get(id))})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Dist < a.Dist || (b.Dist == a.Dist && b.ID < a.ID) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

// TestKNNRangeParityAcrossWorkers: the filter pipeline of a
// snapshot-round-tripped database returns results identical to the
// exhaustive scan, for every query, at worker counts 1, 4 and 8.
func TestKNNRangeParityAcrossWorkers(t *testing.T) {
	src := randomDB(t, 7, 80)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, workers := range []int{1, 4, 8} {
		db, err := LoadWith(bytes.NewReader(raw), LoadOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(100))
		for qi := 0; qi < 12; qi++ {
			q := randomQuery(rng)
			truth := scanNeighbors(db, q)

			k := 1 + rng.Intn(15)
			got := db.KNN(q, k)
			if len(got) != k {
				t.Fatalf("workers=%d KNN returned %d results, want %d", workers, len(got), k)
			}
			for i := range got {
				if got[i] != truth[i] {
					t.Fatalf("workers=%d query %d: KNN[%d] = %+v, scan ground truth %+v",
						workers, qi, i, got[i], truth[i])
				}
			}

			eps := truth[len(truth)/3].Dist // a radius with a non-trivial result set
			want := 0
			for _, nb := range truth {
				if nb.Dist <= eps {
					want++
				}
			}
			rgot := db.Range(q, eps)
			if len(rgot) != want {
				t.Fatalf("workers=%d query %d: Range returned %d results, want %d",
					workers, qi, len(rgot), want)
			}
			for i := range rgot {
				if rgot[i] != truth[i] {
					t.Fatalf("workers=%d query %d: Range[%d] = %+v, want %+v",
						workers, qi, i, rgot[i], truth[i])
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := randomDB(t, 8, 20)
	path := t.TempDir() + "/db.vsnap"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), db.Len())
	}
	if _, err := LoadFile(path+".missing", LoadOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
