package vsdb

import (
	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/vectorset"
)

// SetQuery selects the set distance a query-by-vector-set runs under.
// The zero value is the minimal matching distance — exactly what KNN
// and Range compute — so callers that thread a SetQuery through without
// touching it lose nothing.
//
// Partial switches to the partial matching distance of §4.1: the
// cheapest pairing of i query vectors with i distinct object vectors,
// ignoring the rest of both sets. It is not a metric (it violates the
// triangle inequality), so the centroid filter's lower bound does not
// apply; partial queries run as an exact parallel scan over every live
// object. That is the right trade for the workload it serves — a
// damaged or cropped scan whose surviving sub-vectors should match the
// true part without the missing ones being charged as weight.
type SetQuery struct {
	// Partial selects the partial matching distance instead of the
	// minimal matching distance.
	Partial bool
	// I is the matching size: the number of vector pairs the partial
	// distance is allowed to use. It is clamped per object pair to
	// min(I, |query|, |object|); 0 means "as many as possible"
	// (min(|query|, |object|) for each pair). Ignored unless Partial.
	I int
}

// partialI resolves the effective matching size for one (query, object)
// cardinality pair.
func (q SetQuery) partialI(nq, nobj int) int {
	i := q.I
	if i <= 0 || i > nq {
		i = nq
	}
	if i > nobj {
		i = nobj
	}
	return i
}

// KNNSet returns the k nearest stored objects to an ad-hoc query vector
// set under the distance selected by q. With the zero SetQuery it is
// exactly KNN (same code path, byte-identical results); with q.Partial
// it ranks by the partial matching distance via an exact scan. Results
// are deterministic and identical at any worker count.
func (db *DB) KNNSet(query [][]float64, k int, q SetQuery) []Neighbor {
	v := db.cur.Load()
	if !q.Partial {
		return db.knnView(v, vectorset.FlatFromRows(query), k)
	}
	out := db.partialScan(v, query, q, -1)
	if k > len(out) {
		k = len(out)
	}
	if k <= 0 {
		return nil
	}
	return out[:k:k]
}

// RangeSet returns all stored objects within eps of the query set under
// the distance selected by q (Range for the zero SetQuery, an exact
// partial-matching scan with q.Partial).
func (db *DB) RangeSet(query [][]float64, eps float64, q SetQuery) []Neighbor {
	v := db.cur.Load()
	if !q.Partial {
		return db.rangeView(v, vectorset.FlatFromRows(query), eps)
	}
	return db.partialScan(v, query, q, eps)
}

// partialScan computes the partial matching distance from query to
// every live object in the view — base and delta alike, tombstones
// excluded — in parallel on the query worker pool. eps ≥ 0 filters to
// the range predicate, eps < 0 keeps everything. One slot per live id
// keeps the result deterministic at any worker count; the merged list
// is (dist, id)-ordered like every other query path.
func (db *DB) partialScan(v *view, query [][]float64, q SetQuery, eps float64) []Neighbor {
	n := len(v.ids)
	if n == 0 || len(query) == 0 {
		return nil
	}
	dists := make([]float64, n)
	workers := db.queryWorkers()
	if workers > n {
		workers = n
	}
	parallel.Run(workers, func(worker int) {
		lo, hi := parallel.Chunk(n, workers, worker)
		if lo >= hi {
			return
		}
		ws := dist.GetWorkspace()
		defer dist.PutWorkspace(ws)
		for i := lo; i < hi; i++ {
			set := v.get(v.ids[i]).Rows()
			dists[i] = ws.PartialMatching(query, set, dist.L2, q.partialI(len(query), len(set)))
		}
	})
	db.refExtra.Add(int64(n))
	out := make([]Neighbor, 0, n)
	for i, id := range v.ids {
		if eps >= 0 && dists[i] > eps {
			continue
		}
		out = append(out, Neighbor{ID: id, Dist: dists[i]})
	}
	sortNeighbors(out)
	return out
}
