// Package vsdbtest holds the randomized-oracle machinery shared by the
// vsdb live-update tests and the cluster cross-shard parity tests: a
// seeded trace generator producing valid interleavings of mutations and
// queries, a brute-force reference model queried by exhaustive exact
// scan, a bit-exact result differ, and a bounded ddmin-style trace
// shrinker. Keeping it in a separate package lets internal/cluster
// demand the same "bit-identical to the model at every step" contract
// the unsharded engine is held to, with the same readable
// counterexamples on failure.
package vsdbtest

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/vsdb"
)

// OpKind enumerates the operations a trace can contain.
type OpKind int

const (
	OpInsert OpKind = iota
	OpBulk
	OpDelete
	OpKNN
	OpRange
	OpCompact
	OpCheckpoint
	OpReopen
)

func (k OpKind) String() string {
	return [...]string{"insert", "bulk", "delete", "knn", "range", "compact", "checkpoint", "reopen"}[k]
}

// Op is one concrete trace operation. Which fields are meaningful
// depends on Kind (ID+Set for insert, IDs+Sets for bulk, and so on).
type Op struct {
	Kind OpKind
	ID   uint64
	Set  [][]float64
	IDs  []uint64      // bulk
	Sets [][][]float64 // bulk
	K    int
	Eps  float64
}

func (o Op) String() string {
	switch o.Kind {
	case OpInsert:
		return fmt.Sprintf("insert(%d, %v)", o.ID, o.Set)
	case OpBulk:
		return fmt.Sprintf("bulk(%v, %v)", o.IDs, o.Sets)
	case OpDelete:
		return fmt.Sprintf("delete(%d)", o.ID)
	case OpKNN:
		return fmt.Sprintf("knn(%v, k=%d)", o.Set, o.K)
	case OpRange:
		return fmt.Sprintf("range(%v, eps=%g)", o.Set, o.Eps)
	}
	return o.Kind.String() + "()"
}

// TraceOptions parameterizes GenTrace.
type TraceOptions struct {
	// NOps is the trace length.
	NOps int
	// Dim and MaxCard bound the generated vector sets.
	Dim, MaxCard int
	// Persist mixes checkpoint and reopen (crash-shaped restart) ops
	// into the trace. Engines without a persistence hook leave it false.
	Persist bool
}

// GenTrace materializes opt.NOps concrete operations from the seed,
// simulating liveness so every op is valid in context (deletes target
// live ids; some inserts reuse previously deleted ids to exercise
// delete+reinsert through WAL replay and compaction).
func GenTrace(seed int64, opt TraceOptions) []Op {
	rng := rand.New(rand.NewSource(seed))
	live := []uint64{}
	dead := []uint64{}
	next := uint64(0)
	randSet := func() [][]float64 {
		set := make([][]float64, 1+rng.Intn(opt.MaxCard))
		for i := range set {
			set[i] = make([]float64, opt.Dim)
			for j := range set[i] {
				set[i][j] = rng.NormFloat64()
			}
		}
		return set
	}
	newID := func() uint64 {
		// Reinsertion of a dead id exercises the delete+reinsert paths.
		if len(dead) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(dead))
			id := dead[i]
			dead = append(dead[:i], dead[i+1:]...)
			return id
		}
		next++
		return next
	}
	ops := make([]Op, 0, opt.NOps)
	for len(ops) < opt.NOps {
		switch p := rng.Intn(100); {
		case p < 30: // insert
			id := newID()
			live = append(live, id)
			ops = append(ops, Op{Kind: OpInsert, ID: id, Set: randSet()})
		case p < 37: // bulk insert of 1..6
			n := 1 + rng.Intn(6)
			ids := make([]uint64, n)
			sets := make([][][]float64, n)
			for i := range ids {
				ids[i] = newID()
				sets[i] = randSet()
				live = append(live, ids[i])
			}
			ops = append(ops, Op{Kind: OpBulk, IDs: ids, Sets: sets})
		case p < 59: // delete
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			dead = append(dead, id)
			ops = append(ops, Op{Kind: OpDelete, ID: id})
		case p < 79: // knn
			ops = append(ops, Op{Kind: OpKNN, Set: randSet(), K: 1 + rng.Intn(8)})
		case p < 89: // range
			ops = append(ops, Op{Kind: OpRange, Set: randSet(), Eps: rng.Float64() * 3})
		case p < 94:
			ops = append(ops, Op{Kind: OpCompact})
		case p < 97:
			if !opt.Persist {
				continue
			}
			ops = append(ops, Op{Kind: OpCheckpoint})
		default:
			if !opt.Persist {
				continue
			}
			ops = append(ops, Op{Kind: OpReopen})
		}
	}
	return ops
}

// Model is the brute-force reference: live sets plus insertion order,
// queried by exhaustive exact scan under the same ground distance and
// weight function as the engine under test.
type Model struct {
	sets  map[uint64][][]float64
	order []uint64
	wfn   dist.WeightFunc
}

// NewModel returns an empty model with the weight function w_ω induced
// by omega (the vsdb default).
func NewModel(omega []float64) *Model {
	return &Model{sets: map[uint64][][]float64{}, wfn: dist.WeightNormTo(omega)}
}

// Insert records id → set as live.
func (m *Model) Insert(id uint64, set [][]float64) {
	m.sets[id] = set
	m.order = append(m.order, id)
}

// Delete removes a live id.
func (m *Model) Delete(id uint64) {
	delete(m.sets, id)
	for i, x := range m.order {
		if x == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Len returns the number of live objects.
func (m *Model) Len() int { return len(m.order) }

// Order returns the live ids in insertion order (shared slice; do not
// mutate).
func (m *Model) Order() []uint64 { return m.order }

// Has reports whether id is live.
func (m *Model) Has(id uint64) bool {
	_, ok := m.sets[id]
	return ok
}

func (m *Model) scan(q [][]float64) []vsdb.Neighbor {
	out := make([]vsdb.Neighbor, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, vsdb.Neighbor{ID: id, Dist: dist.MatchingDistance(q, m.sets[id], dist.L2, m.wfn)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// KNN returns the k nearest model objects under the (dist, id) contract.
func (m *Model) KNN(q [][]float64, k int) []vsdb.Neighbor {
	all := m.scan(q)
	if k > len(all) {
		k = len(all)
	}
	if k <= 0 {
		return nil
	}
	return all[:k]
}

// Range returns all model objects within eps of q.
func (m *Model) Range(q [][]float64, eps float64) []vsdb.Neighbor {
	all := m.scan(q)
	out := all[:0:0]
	for _, nb := range all {
		if nb.Dist <= eps {
			out = append(out, nb)
		}
	}
	return out
}

// Diff compares two result lists for bit-identity and returns a
// description of the first divergence ("" when equal).
func Diff(got, want []vsdb.Neighbor) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d results, want %d (got %v, want %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("result %d = %+v, want %+v (not bit-identical)", i, got[i], want[i])
		}
	}
	return ""
}

// Shrink reduces a failing trace with bounded ddmin-style chunk removal:
// drop chunks of shrinking size as long as fails still reports the trace
// failing, re-executing at most budget times. Removed mutation ops can
// invalidate later ops; runners that treat op errors as failures keep
// only removals preserving a real mismatch, which is what we want to
// read.
func Shrink(ops []Op, fails func([]Op) bool, budget int) []Op {
	cur := ops
	for chunk := len(cur) / 2; chunk >= 1 && budget > 0; chunk /= 2 {
		for start := 0; start+chunk <= len(cur) && budget > 0; {
			cand := append(append([]Op{}, cur[:start]...), cur[start+chunk:]...)
			budget--
			if fails(cand) {
				cur = cand // removal kept the failure; retry same offset
			} else {
				start += chunk
			}
		}
	}
	return cur
}
