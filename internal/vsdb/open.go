package vsdb

import (
	"fmt"
	"io"
	"sync"

	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vectorset"
)

// Million-object serving (DESIGN.md §11): a paged VXSNAP02 snapshot is
// opened by mmap and served in place — base sets alias the mapping, the
// X-tree is bulk-loaded from the centroid region (out of core past
// externalSTRThreshold objects), and nothing is decoded per object.

// externalSTRThreshold is the object count at which OpenFile switches
// from the in-memory STR build to the external-memory one. At the
// threshold the centroid working set alone (count·dim·8 bytes, times
// the sort's copies) starts to rival the mapped file.
const externalSTRThreshold = 1 << 18

// baseStore resolves base-resident sets by id. Heap-resident databases
// use mapStore; mmap-backed ones use snapStore.
type baseStore interface {
	baseHas(id uint64) bool
	baseGet(id uint64) (vectorset.Flat, bool)
}

// mapStore is the heap-resident base: one contiguous flat buffer per
// object, keyed by id.
type mapStore map[uint64]vectorset.Flat

func (m mapStore) baseHas(id uint64) bool {
	_, ok := m[id]
	return ok
}

func (m mapStore) baseGet(id uint64) (vectorset.Flat, bool) {
	s, ok := m[id]
	return s, ok
}

// snapStore serves base sets straight from a mapped paged snapshot.
// The id→index map is built lazily on the first mutation or point
// lookup: the query hot path (filter index → refinement in place)
// never needs it, so a read-only open stays O(1) in decode work.
type snapStore struct {
	r    *snapshot.PagedReader
	once sync.Once
	idx  map[uint64]int
}

func (s *snapStore) index() map[uint64]int {
	s.once.Do(func() {
		ids := s.r.IDs()
		idx := make(map[uint64]int, len(ids))
		for i, id := range ids {
			idx[id] = i
		}
		s.idx = idx
	})
	return s.idx
}

func (s *snapStore) baseHas(id uint64) bool {
	_, ok := s.index()[id]
	return ok
}

func (s *snapStore) baseGet(id uint64) (vectorset.Flat, bool) {
	i, ok := s.index()[id]
	if !ok {
		return vectorset.Flat{}, false
	}
	return s.r.At(i), true
}

// OpenFile opens a snapshot file in whichever format it carries. A
// version-1 stream is loaded to heap exactly like LoadFile; a paged
// version-2 snapshot is memory-mapped and served in place: base sets
// and centroids alias the mapping (verified lazily, one CRC per page on
// first touch), so open cost is independent of object count except for
// the STR build over the centroid region — which goes out of core past
// externalSTRThreshold objects (or when opt.ExternalSTR is set).
//
// The returned database is fully mutable; mutations land in the delta
// memtable and the first compaction materializes the base to heap.
// Close unmaps the snapshot, so an mmap-backed database must not be
// queried after Close.
func OpenFile(path string, opt LoadOptions) (*DB, error) {
	ver, err := snapshot.SniffFile(path)
	if err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	if ver == 1 {
		return LoadFile(path, opt)
	}
	r, err := snapshot.OpenPaged(path, snapshot.PagedReaderOptions{Tracker: opt.Tracker})
	if err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	db, err := openPaged(r, opt)
	if err != nil {
		r.Close()
		return nil, err
	}
	return db, nil
}

func openPaged(r *snapshot.PagedReader, opt LoadOptions) (*DB, error) {
	cfg := Config{
		Dim:          r.Dim(),
		MaxCard:      r.MaxCard(),
		Omega:        r.Omega(),
		Tracker:      opt.Tracker,
		Workers:      opt.Workers,
		MaxDelta:     opt.MaxDelta,
		CompactRatio: opt.CompactRatio,
		Approx:       opt.Approx,
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The STR build walks the centroid region through the lazy-CRC
	// accessors, which panic on damage; verifying the region up front
	// turns a corrupt file into an ErrCorrupt return instead.
	if err := r.CheckCentroids(); err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	db := &DB{cfg: cfg, omega: cfg.Omega, reader: r}
	ids := r.IDs()
	intIDs := make([]int, len(ids))
	for i, id := range ids {
		intIDs[i] = int(id)
	}
	ix, err := filter.NewBulkStore(db.filterConfig(), r, intIDs, filter.StoreBuildOptions{
		External: opt.ExternalSTR || r.Len() >= externalSTRThreshold,
		TmpDir:   opt.STRTmpDir,
		RunSize:  opt.STRRunSize,
	})
	if err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	if cfg.Approx != nil && r.HasSketches() {
		blk, err := r.Sketches()
		if err != nil {
			return nil, fmt.Errorf("vsdb: %w", err)
		}
		if blk.Params == cfg.Approx.params() {
			_ = ix.AttachSketches(blk) // mismatch → lazy rebuild
		}
	}
	db.cur.Store(&view{
		seq:      r.Seq(),
		base:     ix,
		baseSets: &snapStore{r: r},
		ids:      ids,
	})
	if opt.WALPath != "" {
		if err := db.AttachWAL(opt.WALPath, WALOptions{NoSync: opt.WALNoSync}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Mapped reports whether the database serves its base from a
// memory-mapped paged snapshot.
func (db *DB) Mapped() bool {
	return db.reader != nil && db.reader.Mapped()
}

// BulkBuildFromStream writes a paged (VXSNAP02) snapshot at path from a
// stream of objects and opens it for serving. next is called until it
// returns io.EOF; each call yields one object, validated against cfg
// (cfg.Tracker/Workers/MaxDelta/CompactRatio carry into the opened
// database via opt, not cfg). Objects stream straight to disk — peak
// memory is bounded by the external sort's run size, not the dataset —
// so this is the ingest path for datasets that never fit in heap. The
// write is atomic (temporary sibling file + rename); on error nothing
// is left at path.
func BulkBuildFromStream(path string, cfg Config, seq uint64, next func() (uint64, vectorset.Flat, error), opt LoadOptions) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	omega := cfg.Omega
	if omega == nil {
		omega = make([]float64, cfg.Dim)
	}
	chk := &DB{cfg: cfg, omega: omega}
	wopts := snapshot.PagedWriterOptions{
		Dim:     cfg.Dim,
		MaxCard: cfg.MaxCard,
		Omega:   omega,
		Seq:     seq,
	}
	if opt.Approx != nil {
		// Sketch the stream as it passes: the built file carries the
		// signature tail and the open below adopts it directly.
		p := opt.Approx.params()
		wopts.Sketch = &p
	}
	w, err := snapshot.CreatePaged(path, wopts)
	if err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	seen := make(map[uint64]struct{})
	for {
		id, set, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Abort()
			return nil, err
		}
		if _, dup := seen[id]; dup {
			w.Abort()
			return nil, fmt.Errorf("vsdb: stream repeats id %d", id)
		}
		seen[id] = struct{}{}
		if err := chk.checkFlat(id, set); err != nil {
			w.Abort()
			return nil, err
		}
		if err := w.Append(id, set); err != nil {
			w.Abort()
			return nil, fmt.Errorf("vsdb: %w", err)
		}
	}
	if err := w.Finish(); err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	return OpenFile(path, opt)
}
