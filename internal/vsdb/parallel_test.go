package vsdb

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestDistanceChecked(t *testing.T) {
	db := openTestDB(t)
	a := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	b := [][]float64{{0, 0, 0, 0}}
	got, err := db.DistanceChecked(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := db.Distance(a, b); got != want {
		t.Errorf("DistanceChecked = %v, Distance = %v", got, want)
	}
	if _, err := db.DistanceChecked(a, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged input (mixed dims across sets) must error")
	}
	if _, err := db.DistanceChecked([][]float64{{1}, {1, 2, 3, 4}}, b); err == nil {
		t.Error("ragged input (mixed dims within a set) must error")
	}
}

func TestWorkersParity(t *testing.T) {
	seq, err := Open(Config{Dim: 4, MaxCard: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Open(Config{Dim: 4, MaxCard: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sets := make([][][]float64, 200)
	for i := range sets {
		sets[i] = randSet(rng, 1+rng.Intn(5), 4)
		if err := seq.Insert(uint64(i), sets[i]); err != nil {
			t.Fatal(err)
		}
		if err := par.Insert(uint64(i), sets[i]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 8; trial++ {
		q := sets[rng.Intn(len(sets))]
		if got, want := par.KNN(q, 7), seq.KNN(q, 7); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: parallel knn %v != sequential %v", trial, got, want)
		}
		eps := 10 + rng.Float64()*40
		if got, want := par.Range(q, eps), seq.Range(q, eps); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: parallel range %v != sequential %v", trial, got, want)
		}
	}
}
