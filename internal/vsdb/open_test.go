package vsdb

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vectorset"
)

// buildV1Snapshot saves a randomized database as a version-1 snapshot
// file and returns the path plus the ids it holds.
func buildV1Snapshot(t *testing.T, seed int64, n int) (string, []uint64) {
	t.Helper()
	db, err := Open(Config{Dim: 4, MaxCard: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(100 + i*3)
		if err := db.Insert(ids[i], randSet(rng, 1+rng.Intn(5), 4)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "v1.snap")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path, ids
}

// transcript runs a fixed randomized query workload and renders every
// result to a string: KNN and range answers, in order, with full
// float64 bit precision. Two databases serving the same logical state
// must produce byte-identical transcripts.
func transcript(db *DB, seed int64, queries int) string {
	rng := rand.New(rand.NewSource(seed))
	out := ""
	for qi := 0; qi < queries; qi++ {
		q := randSet(rng, 1+rng.Intn(5), 4)
		for _, nb := range db.KNN(q, 6) {
			out += fmt.Sprintf("k %d %d %b\n", qi, nb.ID, nb.Dist)
		}
		for _, nb := range db.Range(q, 8.0) {
			out += fmt.Sprintf("r %d %d %b\n", qi, nb.ID, nb.Dist)
		}
	}
	return out
}

// TestOpenFileMigrationParity is the VXSNAP01 → VXSNAP02 migration
// suite: a randomized v1 snapshot, converted to the paged layout, must
// answer an identical query workload byte-for-byte whether it is served
// heap-decoded (v1), mmap-aliased (v2), or mmap with the external STR
// build — at one refinement worker and at several.
func TestOpenFileMigrationParity(t *testing.T) {
	v1, ids := buildV1Snapshot(t, 0xfeed, 400)
	v2 := filepath.Join(t.TempDir(), "v2.snap")
	if err := snapshot.ConvertFile(v1, v2, 0); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ref, err := OpenFile(v1, LoadOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := transcript(ref, 42, 25)
		variants := map[string]LoadOptions{
			"mmap":         {Workers: workers},
			"mmap-ext-str": {Workers: workers, ExternalSTR: true, STRRunSize: 64},
		}
		for name, opt := range variants {
			db, err := OpenFile(v2, opt)
			if err != nil {
				t.Fatalf("%s/w=%d: %v", name, workers, err)
			}
			if db.Len() != len(ids) || db.Epoch() != ref.Epoch() {
				t.Fatalf("%s/w=%d: Len/Epoch = %d/%d, want %d/%d",
					name, workers, db.Len(), db.Epoch(), len(ids), ref.Epoch())
			}
			if got := transcript(db, 42, 25); got != want {
				t.Fatalf("%s/w=%d: query transcript diverges from the v1 heap path", name, workers)
			}
			// Point lookups exercise snapStore's lazy id index.
			for _, id := range ids[:10] {
				if !db.cur.Load().live(id) {
					t.Fatalf("%s/w=%d: id %d not live", name, workers, id)
				}
				a, b := ref.Get(id), db.Get(id)
				if len(a) != len(b) {
					t.Fatalf("%s/w=%d: Get(%d) cardinality %d vs %d", name, workers, id, len(b), len(a))
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestOpenFileMutationsAndWAL drives inserts, deletes, compaction and a
// WAL re-open against an mmap-backed database: mutations must layer over
// the mapped base exactly as over a heap base, and a crash-recovery
// open (same snapshot + WAL replay) must restore the state.
func TestOpenFileMutationsAndWAL(t *testing.T) {
	v1, ids := buildV1Snapshot(t, 0xcafe, 120)
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.snap")
	if err := snapshot.ConvertFile(v1, v2, 0); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal")
	db, err := OpenFile(v2, LoadOptions{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if err := db.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(77777, randSet(rng, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(ids[3], randSet(rng, 2, 4)); err != nil {
		t.Fatal(err)
	}
	want := transcript(db, 7, 10)
	epoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash recovery: open the same mapped snapshot, replay the WAL.
	db, err = OpenFile(v2, LoadOptions{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != epoch {
		t.Fatalf("recovered epoch %d, want %d", db.Epoch(), epoch)
	}
	if got := transcript(db, 7, 10); got != want {
		t.Fatal("recovered state answers queries differently")
	}
	// Compaction materializes the base to heap; the mapping itself stays
	// open (Close owns it) and answers must not change.
	db.Compact()
	if got := transcript(db, 7, 10); got != want {
		t.Fatal("compaction changed query answers")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkBuildFromStream round-trips a streamed build: the opened
// database serves exactly the streamed objects, and the file re-opens.
func TestBulkBuildFromStream(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(21))
	sets := make([]vectorset.Flat, n)
	for i := range sets {
		sets[i] = vectorset.FlatFromRows(randSet(rng, 1+rng.Intn(5), 4))
	}
	path := filepath.Join(t.TempDir(), "built.snap")
	i := 0
	db, err := BulkBuildFromStream(path, Config{Dim: 4, MaxCard: 5}, 12, func() (uint64, vectorset.Flat, error) {
		if i == n {
			return 0, vectorset.Flat{}, io.EOF
		}
		i++
		return uint64(i), sets[i-1], nil
	}, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != n || db.Epoch() != 12 {
		t.Fatalf("Len/Epoch = %d/%d, want %d/12", db.Len(), db.Epoch(), n)
	}
	want := transcript(db, 3, 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := transcript(db, 3, 10); got != want {
		t.Fatal("re-opened snapshot answers queries differently")
	}
	db.Close()
}

// TestBulkBuildFromStreamRejectsBadInput covers duplicate ids, invalid
// sets, and a failing source; path must not exist afterwards.
func TestBulkBuildFromStreamRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	set := vectorset.FlatFromRows([][]float64{{1, 2, 3, 4}})
	cases := map[string]func(calls int) (uint64, vectorset.Flat, error){
		"duplicate id": func(calls int) (uint64, vectorset.Flat, error) {
			return 5, set, nil
		},
		"wrong dim": func(calls int) (uint64, vectorset.Flat, error) {
			return uint64(calls), vectorset.FlatFromRows([][]float64{{1, 2}}), nil
		},
		"source error": func(calls int) (uint64, vectorset.Flat, error) {
			if calls > 1 {
				return 0, vectorset.Flat{}, errors.New("disk on fire")
			}
			return uint64(calls), set, nil
		},
	}
	for name, src := range cases {
		path := filepath.Join(dir, name)
		calls := 0
		_, err := BulkBuildFromStream(path, Config{Dim: 4, MaxCard: 5}, 0, func() (uint64, vectorset.Flat, error) {
			calls++
			return src(calls)
		}, LoadOptions{})
		if err == nil {
			t.Fatalf("%s: build succeeded", name)
		}
		if _, serr := snapshot.SniffFile(path); serr == nil {
			t.Fatalf("%s: file left behind at %s", name, path)
		}
	}
}
