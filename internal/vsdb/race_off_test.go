//go:build !race

package vsdb

const raceEnabled = false
