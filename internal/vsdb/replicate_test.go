package vsdb

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/voxset/voxset/internal/wal"
)

func TestApplyRecordStrictSequence(t *testing.T) {
	db := openTestDB(t)
	set := [][]float64{{1, 2, 3, 4}}
	if err := db.ApplyRecord(wal.Record{Seq: 1, Op: wal.OpInsert, ID: 7, Set: set}); err != nil {
		t.Fatalf("ApplyRecord seq 1: %v", err)
	}
	if got := db.Epoch(); got != 1 {
		t.Fatalf("Epoch = %d, want 1", got)
	}
	if db.Get(7) == nil {
		t.Fatal("applied insert is not visible")
	}
	// A gap must be rejected before touching state.
	if err := db.ApplyRecord(wal.Record{Seq: 3, Op: wal.OpDelete, ID: 7}); err == nil {
		t.Fatal("ApplyRecord accepted a sequence gap")
	}
	// A stale (duplicate) record is equally a divergence signal here —
	// deduplication is the follower's job, not the standby's.
	if err := db.ApplyRecord(wal.Record{Seq: 1, Op: wal.OpInsert, ID: 8, Set: set}); err == nil {
		t.Fatal("ApplyRecord accepted a stale sequence")
	}
	if err := db.ApplyRecord(wal.Record{Seq: 2, Op: wal.OpDelete, ID: 7}); err != nil {
		t.Fatalf("ApplyRecord seq 2: %v", err)
	}
	if db.Get(7) != nil {
		t.Fatal("applied delete left the object visible")
	}
	// A conflicting record at the right sequence (insert of a live id)
	// must fail — strict replay refuses to diverge silently.
	if err := db.ApplyRecord(wal.Record{Seq: 3, Op: wal.OpInsert, ID: 9, Set: set}); err != nil {
		t.Fatalf("ApplyRecord seq 3: %v", err)
	}
	if err := db.ApplyRecord(wal.Record{Seq: 4, Op: wal.OpInsert, ID: 9, Set: set}); err == nil {
		t.Fatal("ApplyRecord accepted an insert of a live id")
	}
}

func TestReplayWALFileBootstrapsStandby(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "shard.wal")
	cfg := Config{Dim: 4, MaxCard: 5, WALPath: walPath, WALNoSync: true}
	primary, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for id := uint64(1); id <= 20; id++ {
		if err := primary.Insert(id, randSet(rng, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Delete(5); err != nil {
		t.Fatal(err)
	}

	standby, err := Open(Config{Dim: 4, MaxCard: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := standby.ReplayWALFile(walPath); err != nil {
		t.Fatalf("ReplayWALFile: %v", err)
	}
	if standby.Epoch() != primary.Epoch() {
		t.Fatalf("standby epoch %d, primary %d", standby.Epoch(), primary.Epoch())
	}
	if standby.Len() != primary.Len() {
		t.Fatalf("standby holds %d objects, primary %d", standby.Len(), primary.Len())
	}
	if standby.Get(5) != nil {
		t.Fatal("deleted object resurrected on the standby")
	}
	// Replaying again is a no-op: every record is at or below the epoch.
	if err := standby.ReplayWALFile(walPath); err != nil {
		t.Fatalf("second ReplayWALFile: %v", err)
	}
	if standby.Epoch() != primary.Epoch() {
		t.Fatal("idempotent replay moved the epoch")
	}
	primary.Close()
}

func TestReplayWALFileMissingIsNoop(t *testing.T) {
	db := openTestDB(t)
	if err := db.ReplayWALFile(filepath.Join(t.TempDir(), "absent.wal")); err != nil {
		t.Fatalf("missing WAL should be an empty history, got %v", err)
	}
}

func TestReplayWALFileRejectsGapAndMismatch(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "shard.wal")
	primary, err := Open(Config{Dim: 4, MaxCard: 5, WALPath: walPath, WALNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for id := uint64(1); id <= 5; id++ {
		if err := primary.Insert(id, randSet(rng, 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint truncates the log: its base sequence moves to 5. A
	// fresh standby at epoch 0 would be missing records 1..5 — replay
	// must refuse the gap rather than build a partial state.
	snap := filepath.Join(dir, "snap.vxs")
	if err := primary.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	if err := primary.Insert(6, randSet(rng, 2, 4)); err != nil {
		t.Fatal(err)
	}
	empty := openTestDB(t)
	if err := empty.ReplayWALFile(walPath); err == nil {
		t.Fatal("ReplayWALFile accepted a log starting beyond the standby's epoch")
	}

	// A standby bootstrapped from the checkpoint snapshot adopts the
	// truncated log's suffix cleanly.
	fromSnap, err := LoadFile(snap, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fromSnap.ReplayWALFile(walPath); err != nil {
		t.Fatalf("ReplayWALFile after snapshot bootstrap: %v", err)
	}
	if fromSnap.Epoch() != primary.Epoch() {
		t.Fatalf("standby epoch %d, primary %d", fromSnap.Epoch(), primary.Epoch())
	}

	// A configuration mismatch is rejected up front.
	other, err := Open(Config{Dim: 3, MaxCard: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.ReplayWALFile(walPath); err == nil {
		t.Fatal("ReplayWALFile accepted a log with a different dimension")
	}

	// A database with its own attached WAL must not bootstrap-replay.
	if err := primary.ReplayWALFile(walPath); err == nil {
		t.Fatal("ReplayWALFile ran on a database with an attached WAL")
	}
	primary.Close()
}
