package vsdb

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func openTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Dim: 4, MaxCard: 5})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func randSet(rng *rand.Rand, card, dim int) [][]float64 {
	s := make([][]float64, card)
	for i := range s {
		s[i] = make([]float64, dim)
		for j := range s[i] {
			s[i][j] = rng.NormFloat64() * 10
		}
	}
	return s
}

func TestOpenValidates(t *testing.T) {
	cases := []Config{
		{Dim: 0, MaxCard: 3},
		{Dim: 3, MaxCard: 0},
		{Dim: 3, MaxCard: 2, Omega: []float64{1}},
	}
	for _, c := range cases {
		if _, err := Open(c); err == nil {
			t.Errorf("config %+v should be rejected", c)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	db := openTestDB(t)
	if err := db.Insert(1, [][]float64{{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(1, [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Error("duplicate id must error")
	}
	if err := db.Insert(2, nil); err == nil {
		t.Error("empty set must error")
	}
	if err := db.Insert(3, [][]float64{{1, 2}}); err == nil {
		t.Error("wrong dim must error")
	}
	if err := db.Insert(4, randSet(rand.New(rand.NewSource(1)), 6, 4)); err == nil {
		t.Error("over-cardinality must error")
	}
	if db.Len() != 1 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestInsertCopiesData(t *testing.T) {
	db := openTestDB(t)
	set := [][]float64{{1, 2, 3, 4}}
	if err := db.Insert(9, set); err != nil {
		t.Fatal(err)
	}
	set[0][0] = 999
	if db.Get(9)[0][0] != 1 {
		t.Error("Insert must copy vectors")
	}
}

func TestKNNExactAgainstBruteForce(t *testing.T) {
	db := openTestDB(t)
	rng := rand.New(rand.NewSource(2))
	var all [][][]float64
	for i := 0; i < 150; i++ {
		s := randSet(rng, 1+rng.Intn(5), 4)
		all = append(all, s)
		if err := db.Insert(uint64(i), s); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		q := all[rng.Intn(len(all))]
		got := db.KNN(q, 7)
		type pair struct {
			id uint64
			d  float64
		}
		var want []pair
		for i, s := range all {
			want = append(want, pair{uint64(i), db.Distance(q, s)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].id < want[j].id
		})
		if len(got) != 7 {
			t.Fatalf("got %d results", len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].d) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i].d)
			}
		}
	}
}

func TestRangeMatchesDistance(t *testing.T) {
	db := openTestDB(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 80; i++ {
		if err := db.Insert(uint64(i), randSet(rng, 1+rng.Intn(5), 4)); err != nil {
			t.Fatal(err)
		}
	}
	q := db.Get(0)
	eps := 30.0
	got := db.Range(q, eps)
	want := 0
	for i := 0; i < 80; i++ {
		if db.Distance(q, db.Get(uint64(i))) <= eps {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("range returned %d, want %d", len(got), want)
	}
	for _, nb := range got {
		if nb.Dist > eps {
			t.Errorf("result %v beyond eps", nb)
		}
	}
}

func TestDeleteRemovesFromQueries(t *testing.T) {
	db := openTestDB(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		if err := db.Insert(uint64(i), randSet(rng, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	q := db.Get(5)
	if err := db.Delete(5); err != nil {
		t.Fatal(err)
	}
	if db.Get(5) != nil {
		t.Error("deleted object still readable")
	}
	if err := db.Delete(5); err == nil {
		t.Error("double delete must error")
	}
	for _, nb := range db.KNN(q, 30) {
		if nb.ID == 5 {
			t.Error("deleted object returned by KNN")
		}
	}
	if db.Len() != 29 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestMassDeletionTriggersRebuildAndStaysCorrect(t *testing.T) {
	db := openTestDB(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if err := db.Insert(uint64(i), randSet(rng, 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		if err := db.Delete(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 20 {
		t.Fatalf("len = %d", db.Len())
	}
	got := db.KNN(db.Get(90), 20)
	if len(got) != 20 {
		t.Fatalf("got %d of 20 live objects", len(got))
	}
	for _, nb := range got {
		if nb.ID < 80 {
			t.Errorf("deleted id %d returned", nb.ID)
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	db := openTestDB(t)
	if got := db.KNN([][]float64{{0, 0, 0, 0}}, 5); got != nil {
		t.Error("empty db should return nil")
	}
	if err := db.Insert(1, [][]float64{{1, 1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if got := db.KNN(db.Get(1), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := db.KNN(db.Get(1), 99); len(got) != 1 {
		t.Errorf("k>len returned %d", len(got))
	}
}

func TestCustomOmegaStillExact(t *testing.T) {
	omega := []float64{50, 50, 50, 50}
	db, err := Open(Config{Dim: 4, MaxCard: 4, Omega: omega})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var sets [][][]float64
	for i := 0; i < 60; i++ {
		s := randSet(rng, 1+rng.Intn(4), 4)
		sets = append(sets, s)
		if err := db.Insert(uint64(i), s); err != nil {
			t.Fatal(err)
		}
	}
	q := sets[10]
	got := db.KNN(q, 5)
	best, bestID := math.Inf(1), uint64(0)
	for i, s := range sets {
		if d := db.Distance(q, s); d < best {
			best, bestID = d, uint64(i)
		}
	}
	if got[0].ID != bestID || math.Abs(got[0].Dist-best) > 1e-9 {
		t.Errorf("nearest = %+v, want id %d dist %v", got[0], bestID, best)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := openTestDB(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		if err := db.Insert(uint64(i*3), randSet(rng, 1+rng.Intn(5), 4)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("loaded %d, want %d", back.Len(), db.Len())
	}
	q := db.Get(30)
	a := db.KNN(q, 10)
	b := back.KNN(q, 10)
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
			t.Fatalf("rank %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("expected error")
	}
}
