package vsdb_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/voxset/voxset/internal/vsdb"
	"github.com/voxset/voxset/internal/vsdb/vsdbtest"
)

// The randomized oracle layer: a long seeded schedule of interleaved
// Insert/BulkInsert/Delete/KNN/Range/Compact/Checkpoint/Reopen ops runs
// against the live engine and, in lockstep, against a brute-force
// reference model (a plain map scanned exhaustively per query). Every
// query must match the model bit for bit — same (dist, id) pairs in the
// same order — at every worker count, through every compaction, and
// across every crash-shaped reopen (snapshot + WAL-suffix replay). On a
// mismatch the failing schedule is shrunk (ddmin-style, bounded) before
// it is dumped, so the counterexample is readable. The trace generator,
// model and shrinker live in vsdbtest, shared with the cluster
// cross-shard parity oracle.

// runOracleTrace executes ops against a fresh WAL-backed database in
// dir, verifying every query against the model. It returns the index
// and description of the first mismatch (-1 if the trace passes).
func runOracleTrace(t *testing.T, ops []vsdbtest.Op, workers int, dir string) (int, string) {
	t.Helper()
	const dim, maxCard = 3, 3
	cfg := vsdb.Config{
		Dim:     dim,
		MaxCard: maxCard,
		Omega:   []float64{0.25, -0.5, 1},
		Workers: workers,
		// Small delta threshold so long traces cross many compactions.
		MaxDelta:  64,
		WALPath:   filepath.Join(dir, "oracle.wal"),
		WALNoSync: true,
	}
	snapPath := filepath.Join(dir, "oracle.vsnap")
	db, err := vsdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()
	model := vsdbtest.NewModel(cfg.Omega)
	haveSnap := false

	for i, op := range ops {
		switch op.Kind {
		case vsdbtest.OpInsert:
			if err := db.Insert(op.ID, op.Set); err != nil {
				return i, fmt.Sprintf("insert(%d): %v", op.ID, err)
			}
			model.Insert(op.ID, op.Set)
		case vsdbtest.OpBulk:
			if err := db.BulkInsert(op.IDs, op.Sets); err != nil {
				return i, fmt.Sprintf("bulk(%v): %v", op.IDs, err)
			}
			for j, id := range op.IDs {
				model.Insert(id, op.Sets[j])
			}
		case vsdbtest.OpDelete:
			if err := db.Delete(op.ID); err != nil {
				return i, fmt.Sprintf("delete(%d): %v", op.ID, err)
			}
			model.Delete(op.ID)
		case vsdbtest.OpKNN:
			got, want := db.KNN(op.Set, op.K), model.KNN(op.Set, op.K)
			if msg := vsdbtest.Diff(got, want); msg != "" {
				return i, fmt.Sprintf("knn(k=%d): %s", op.K, msg)
			}
		case vsdbtest.OpRange:
			got, want := db.Range(op.Set, op.Eps), model.Range(op.Set, op.Eps)
			if msg := vsdbtest.Diff(got, want); msg != "" {
				return i, fmt.Sprintf("range(eps=%g): %s", op.Eps, msg)
			}
		case vsdbtest.OpCompact:
			db.Compact()
		case vsdbtest.OpCheckpoint:
			if err := db.Checkpoint(snapPath); err != nil {
				return i, fmt.Sprintf("checkpoint: %v", err)
			}
			haveSnap = true
		case vsdbtest.OpReopen:
			if err := db.Close(); err != nil {
				return i, fmt.Sprintf("close: %v", err)
			}
			if haveSnap {
				db, err = vsdb.LoadFile(snapPath, vsdb.LoadOptions{
					Workers: workers, MaxDelta: cfg.MaxDelta,
					WALPath: cfg.WALPath, WALNoSync: true,
				})
			} else {
				db, err = vsdb.Open(cfg)
			}
			if err != nil {
				return i, fmt.Sprintf("reopen: %v", err)
			}
			// Full-state audit after the crash-shaped restart.
			if db.Len() != model.Len() {
				return i, fmt.Sprintf("reopen: %d objects, model has %d", db.Len(), model.Len())
			}
			for _, id := range model.Order() {
				if db.Get(id) == nil {
					return i, fmt.Sprintf("reopen: id %d lost", id)
				}
			}
		}
		// Cheap standing invariants.
		if db.Len() != model.Len() {
			return i, fmt.Sprintf("Len() = %d, model has %d", db.Len(), model.Len())
		}
	}
	return -1, ""
}

// shrinkOracleTrace wraps vsdbtest.Shrink with a rerun-in-fresh-dir
// failure predicate.
func shrinkOracleTrace(t *testing.T, ops []vsdbtest.Op, workers int, budget int) []vsdbtest.Op {
	t.Helper()
	return vsdbtest.Shrink(ops, func(trace []vsdbtest.Op) bool {
		idx, _ := runOracleTrace(t, trace, workers, t.TempDir())
		return idx >= 0
	}, budget)
}

func oracleTraceOptions(nOps int) vsdbtest.TraceOptions {
	return vsdbtest.TraceOptions{NOps: nOps, Dim: 3, MaxCard: 3, Persist: true}
}

// TestOracleRandomSchedule is the acceptance oracle: a ~10k-op seeded
// random schedule (≈2k with -short) matches the brute-force model
// exactly at workers 1, 4 and 8.
func TestOracleRandomSchedule(t *testing.T) {
	nOps := 10000
	if testing.Short() {
		nOps = 2000
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			ops := vsdbtest.GenTrace(20030604, oracleTraceOptions(nOps))
			idx, msg := runOracleTrace(t, ops, workers, t.TempDir())
			if idx < 0 {
				return
			}
			t.Logf("schedule failed at op %d (%s): %s — shrinking", idx, ops[idx], msg)
			small := shrinkOracleTrace(t, ops[:idx+1], workers, 64)
			for i, op := range small {
				t.Logf("  shrunk[%d] %s", i, op)
			}
			t.Fatalf("oracle mismatch at op %d: %s (shrunk to %d ops above)", idx, msg, len(small))
		})
	}
}

// TestOracleSeeds runs shorter schedules across several seeds so the op
// mix hits different interleavings of compaction, checkpointing and
// reopening.
func TestOracleSeeds(t *testing.T) {
	nOps := 600
	if testing.Short() {
		nOps = 150
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := vsdbtest.GenTrace(seed, oracleTraceOptions(nOps))
			if idx, msg := runOracleTrace(t, ops, 1+int(seed%4), t.TempDir()); idx >= 0 {
				small := shrinkOracleTrace(t, ops[:idx+1], 1+int(seed%4), 48)
				for i, op := range small {
					t.Logf("  shrunk[%d] %s", i, op)
				}
				t.Fatalf("oracle mismatch at op %d (%s): %s", idx, ops[idx], msg)
			}
		})
	}
}
