package vsdb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"github.com/voxset/voxset/internal/dist"
)

// The randomized oracle layer: a long seeded schedule of interleaved
// Insert/BulkInsert/Delete/KNN/Range/Compact/Checkpoint/Reopen ops runs
// against the live engine and, in lockstep, against a brute-force
// reference model (a plain map scanned exhaustively per query). Every
// query must match the model bit for bit — same (dist, id) pairs in the
// same order — at every worker count, through every compaction, and
// across every crash-shaped reopen (snapshot + WAL-suffix replay). On a
// mismatch the failing schedule is shrunk (ddmin-style, bounded) before
// it is dumped, so the counterexample is readable.

type oracleOpKind int

const (
	oracleInsert oracleOpKind = iota
	oracleBulk
	oracleDelete
	oracleKNN
	oracleRange
	oracleCompact
	oracleCheckpoint
	oracleReopen
)

func (k oracleOpKind) String() string {
	return [...]string{"insert", "bulk", "delete", "knn", "range", "compact", "checkpoint", "reopen"}[k]
}

type oracleOp struct {
	kind oracleOpKind
	id   uint64
	set  [][]float64
	ids  []uint64      // bulk
	sets [][][]float64 // bulk
	k    int
	eps  float64
}

func (o oracleOp) String() string {
	switch o.kind {
	case oracleInsert:
		return fmt.Sprintf("insert(%d, %v)", o.id, o.set)
	case oracleBulk:
		return fmt.Sprintf("bulk(%v, %v)", o.ids, o.sets)
	case oracleDelete:
		return fmt.Sprintf("delete(%d)", o.id)
	case oracleKNN:
		return fmt.Sprintf("knn(%v, k=%d)", o.set, o.k)
	case oracleRange:
		return fmt.Sprintf("range(%v, eps=%g)", o.set, o.eps)
	}
	return o.kind.String() + "()"
}

// oracleModel is the brute-force reference: live sets plus insertion
// order, queried by exhaustive exact scan.
type oracleModel struct {
	sets  map[uint64][][]float64
	order []uint64
	wfn   dist.WeightFunc
}

func newOracleModel(omega []float64) *oracleModel {
	return &oracleModel{sets: map[uint64][][]float64{}, wfn: dist.WeightNormTo(omega)}
}

func (m *oracleModel) insert(id uint64, set [][]float64) {
	m.sets[id] = set
	m.order = append(m.order, id)
}

func (m *oracleModel) remove(id uint64) {
	delete(m.sets, id)
	for i, x := range m.order {
		if x == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func (m *oracleModel) scan(q [][]float64) []Neighbor {
	out := make([]Neighbor, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, Neighbor{ID: id, Dist: dist.MatchingDistance(q, m.sets[id], dist.L2, m.wfn)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (m *oracleModel) knn(q [][]float64, k int) []Neighbor {
	all := m.scan(q)
	if k > len(all) {
		k = len(all)
	}
	if k <= 0 {
		return nil
	}
	return all[:k]
}

func (m *oracleModel) rangeQuery(q [][]float64, eps float64) []Neighbor {
	all := m.scan(q)
	out := all[:0:0]
	for _, nb := range all {
		if nb.Dist <= eps {
			out = append(out, nb)
		}
	}
	return out
}

// genOracleTrace materializes nOps concrete operations from the seed,
// simulating the model so every op is valid in context (deletes target
// live ids; some inserts reuse previously deleted ids to exercise
// delete+reinsert through WAL replay and compaction).
func genOracleTrace(seed int64, nOps, dim, maxCard int) []oracleOp {
	rng := rand.New(rand.NewSource(seed))
	live := []uint64{}
	dead := []uint64{}
	next := uint64(0)
	randSet := func() [][]float64 {
		set := make([][]float64, 1+rng.Intn(maxCard))
		for i := range set {
			set[i] = make([]float64, dim)
			for j := range set[i] {
				set[i][j] = rng.NormFloat64()
			}
		}
		return set
	}
	newID := func() uint64 {
		// Reinsertion of a dead id exercises the delete+reinsert paths.
		if len(dead) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(dead))
			id := dead[i]
			dead = append(dead[:i], dead[i+1:]...)
			return id
		}
		next++
		return next
	}
	ops := make([]oracleOp, 0, nOps)
	for len(ops) < nOps {
		switch p := rng.Intn(100); {
		case p < 30: // insert
			id := newID()
			live = append(live, id)
			ops = append(ops, oracleOp{kind: oracleInsert, id: id, set: randSet()})
		case p < 37: // bulk insert of 1..6
			n := 1 + rng.Intn(6)
			ids := make([]uint64, n)
			sets := make([][][]float64, n)
			for i := range ids {
				ids[i] = newID()
				sets[i] = randSet()
				live = append(live, ids[i])
			}
			ops = append(ops, oracleOp{kind: oracleBulk, ids: ids, sets: sets})
		case p < 59: // delete
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			dead = append(dead, id)
			ops = append(ops, oracleOp{kind: oracleDelete, id: id})
		case p < 79: // knn
			ops = append(ops, oracleOp{kind: oracleKNN, set: randSet(), k: 1 + rng.Intn(8)})
		case p < 89: // range
			ops = append(ops, oracleOp{kind: oracleRange, set: randSet(), eps: rng.Float64() * 3})
		case p < 94:
			ops = append(ops, oracleOp{kind: oracleCompact})
		case p < 97:
			ops = append(ops, oracleOp{kind: oracleCheckpoint})
		default:
			ops = append(ops, oracleOp{kind: oracleReopen})
		}
	}
	return ops
}

// runOracleTrace executes ops against a fresh WAL-backed database in
// dir, verifying every query against the model. It returns the index
// and description of the first mismatch (-1 if the trace passes).
func runOracleTrace(t *testing.T, ops []oracleOp, workers int, dir string) (int, string) {
	t.Helper()
	const dim, maxCard = 3, 3
	cfg := Config{
		Dim:     dim,
		MaxCard: maxCard,
		Omega:   []float64{0.25, -0.5, 1},
		Workers: workers,
		// Small delta threshold so long traces cross many compactions.
		MaxDelta:  64,
		WALPath:   filepath.Join(dir, "oracle.wal"),
		WALNoSync: true,
	}
	snapPath := filepath.Join(dir, "oracle.vsnap")
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()
	model := newOracleModel(cfg.Omega)
	haveSnap := false

	for i, op := range ops {
		switch op.kind {
		case oracleInsert:
			if err := db.Insert(op.id, op.set); err != nil {
				return i, fmt.Sprintf("insert(%d): %v", op.id, err)
			}
			model.insert(op.id, op.set)
		case oracleBulk:
			if err := db.BulkInsert(op.ids, op.sets); err != nil {
				return i, fmt.Sprintf("bulk(%v): %v", op.ids, err)
			}
			for j, id := range op.ids {
				model.insert(id, op.sets[j])
			}
		case oracleDelete:
			if err := db.Delete(op.id); err != nil {
				return i, fmt.Sprintf("delete(%d): %v", op.id, err)
			}
			model.remove(op.id)
		case oracleKNN:
			got, want := db.KNN(op.set, op.k), model.knn(op.set, op.k)
			if msg := diffNeighbors(got, want); msg != "" {
				return i, fmt.Sprintf("knn(k=%d): %s", op.k, msg)
			}
		case oracleRange:
			got, want := db.Range(op.set, op.eps), model.rangeQuery(op.set, op.eps)
			if msg := diffNeighbors(got, want); msg != "" {
				return i, fmt.Sprintf("range(eps=%g): %s", op.eps, msg)
			}
		case oracleCompact:
			db.Compact()
		case oracleCheckpoint:
			if err := db.Checkpoint(snapPath); err != nil {
				return i, fmt.Sprintf("checkpoint: %v", err)
			}
			haveSnap = true
		case oracleReopen:
			if err := db.Close(); err != nil {
				return i, fmt.Sprintf("close: %v", err)
			}
			if haveSnap {
				db, err = LoadFile(snapPath, LoadOptions{
					Workers: workers, MaxDelta: cfg.MaxDelta,
					WALPath: cfg.WALPath, WALNoSync: true,
				})
			} else {
				db, err = Open(cfg)
			}
			if err != nil {
				return i, fmt.Sprintf("reopen: %v", err)
			}
			// Full-state audit after the crash-shaped restart.
			if db.Len() != len(model.order) {
				return i, fmt.Sprintf("reopen: %d objects, model has %d", db.Len(), len(model.order))
			}
			for _, id := range model.order {
				if db.Get(id) == nil {
					return i, fmt.Sprintf("reopen: id %d lost", id)
				}
			}
		}
		// Cheap standing invariants.
		if db.Len() != len(model.order) {
			return i, fmt.Sprintf("Len() = %d, model has %d", db.Len(), len(model.order))
		}
	}
	return -1, ""
}

func diffNeighbors(got, want []Neighbor) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d results, want %d (got %v, want %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("result %d = %+v, want %+v (not bit-identical)", i, got[i], want[i])
		}
	}
	return ""
}

// shrinkOracleTrace reduces a failing schedule with bounded ddmin-style
// chunk removal: drop chunks of shrinking size as long as the trace
// still fails, re-executing at most budget times. Removed mutation ops
// can invalidate later ops; runOracleTrace treats op errors as failures
// too, so the shrinker only keeps removals that preserve a *query
// mismatch* failure, which is what we want to read.
func shrinkOracleTrace(t *testing.T, ops []oracleOp, workers int, dir string, budget int) []oracleOp {
	t.Helper()
	fails := func(trace []oracleOp) (bool, string) {
		sub := t.TempDir()
		idx, msg := runOracleTrace(t, trace, workers, sub)
		return idx >= 0, msg
	}
	cur := ops
	for chunk := len(cur) / 2; chunk >= 1 && budget > 0; chunk /= 2 {
		for start := 0; start+chunk <= len(cur) && budget > 0; {
			cand := append(append([]oracleOp{}, cur[:start]...), cur[start+chunk:]...)
			budget--
			if ok, _ := fails(cand); ok {
				cur = cand // removal kept the failure; retry same offset
			} else {
				start += chunk
			}
		}
	}
	return cur
}

// TestOracleRandomSchedule is the acceptance oracle: a ~10k-op seeded
// random schedule (≈2k with -short) matches the brute-force model
// exactly at workers 1, 4 and 8.
func TestOracleRandomSchedule(t *testing.T) {
	nOps := 10000
	if testing.Short() {
		nOps = 2000
	}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			ops := genOracleTrace(20030604, nOps, 3, 3)
			idx, msg := runOracleTrace(t, ops, workers, t.TempDir())
			if idx < 0 {
				return
			}
			t.Logf("schedule failed at op %d (%s): %s — shrinking", idx, ops[idx], msg)
			small := shrinkOracleTrace(t, ops[:idx+1], workers, t.TempDir(), 64)
			for i, op := range small {
				t.Logf("  shrunk[%d] %s", i, op)
			}
			t.Fatalf("oracle mismatch at op %d: %s (shrunk to %d ops above)", idx, msg, len(small))
		})
	}
}

// TestOracleSeeds runs shorter schedules across several seeds so the op
// mix hits different interleavings of compaction, checkpointing and
// reopening.
func TestOracleSeeds(t *testing.T) {
	nOps := 600
	if testing.Short() {
		nOps = 150
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := genOracleTrace(seed, nOps, 3, 3)
			if idx, msg := runOracleTrace(t, ops, 1+int(seed%4), t.TempDir()); idx >= 0 {
				small := shrinkOracleTrace(t, ops[:idx+1], 1+int(seed%4), t.TempDir(), 48)
				for i, op := range small {
					t.Logf("  shrunk[%d] %s", i, op)
				}
				t.Fatalf("oracle mismatch at op %d (%s): %s", idx, ops[idx], msg)
			}
		})
	}
}
