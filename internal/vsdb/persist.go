package vsdb

import (
	"fmt"
	"io"
	"os"

	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/storage"
	"github.com/voxset/voxset/internal/vectorset"
)

// Persistence (DESIGN.md §7/§8): the versioned, checksummed binary
// format of internal/snapshot, carrying the objects in insertion order,
// the extended centroids of the filter index so Load can STR-bulk-load
// the X-tree without re-deriving the access structure, and the mutation
// epoch so a write-ahead log can be replayed against the snapshot.

// Save writes the database and its filter/X-tree index as a version-1
// snapshot stream. The encoding is deterministic: two databases with
// identical logical contents (same configuration, ids, sets, insertion
// order and epoch) produce byte-identical snapshots regardless of their
// physical state (delta/tombstones vs compacted), so a Save → Load →
// Save round trip is a fixed point. Save captures one consistent view;
// concurrent mutations do not tear it.
func (db *DB) Save(w io.Writer) error {
	return db.saveView(db.cur.Load(), w)
}

func (db *DB) saveView(v *view, w io.Writer) error {
	s := snapshot.DB{
		Dim:       db.cfg.Dim,
		MaxCard:   db.cfg.MaxCard,
		Omega:     db.omega,
		Seq:       v.seq,
		IDs:       v.ids,
		Sets:      make([][][]float64, len(v.ids)),
		Centroids: db.viewCentroids(v),
		Sketches:  db.viewSketches(v),
	}
	for i, id := range v.ids {
		s.Sets[i] = v.get(id).Rows()
	}
	return snapshot.Encode(w, &s)
}

// viewCentroids returns the extended centroids of the live objects in
// insertion order. A compacted view's base stores them aligned with ids;
// otherwise they are recomputed per live set on the worker pool
// (bit-identical — the centroid is deterministic).
func (db *DB) viewCentroids(v *view) [][]float64 {
	out := make([][]float64, len(v.ids))
	if v.compacted() {
		for i := range v.ids {
			out[i] = v.base.Centroid(i)
		}
		return out
	}
	w := parallel.Workers(db.cfg.Workers, parallel.Auto())
	parallel.ForEach(len(v.ids), w, func(i int) {
		out[i] = v.get(v.ids[i]).Centroid(db.cfg.MaxCard, db.omega)
	})
	return out
}

// LoadOptions tunes Load beyond the persisted configuration.
type LoadOptions struct {
	// Tracker, if non-nil, is installed as the database's I/O tracker and
	// charged for reading the snapshot itself (one sequential scan of its
	// pages under the §5.4 cost model).
	Tracker *storage.Tracker
	// Workers is the refinement worker count for the loaded database (same
	// semantics as Config.Workers).
	Workers int
	// WALPath, if non-empty, attaches a write-ahead log after the
	// snapshot is loaded: records beyond the snapshot's epoch are
	// replayed, and subsequent mutations are logged (see AttachWAL).
	WALPath string
	// WALNoSync skips the fsync per mutation batch.
	WALNoSync bool
	// MaxDelta / CompactRatio set the auto-compaction thresholds
	// (Config.MaxDelta / Config.CompactRatio semantics).
	MaxDelta     int
	CompactRatio float64
	// ExternalSTR forces the out-of-core STR build when OpenFile opens a
	// paged snapshot. By default it is chosen automatically once the
	// object count reaches externalSTRThreshold.
	ExternalSTR bool
	// STRTmpDir / STRRunSize tune the external build (defaults: the OS
	// temp dir, and xtree's default run size).
	STRTmpDir  string
	STRRunSize int
	// Approx enables the approximate candidate tier on the loaded
	// database (Config.Approx semantics). When the snapshot carries a
	// sketch table under matching parameters it is adopted directly;
	// otherwise the table is rebuilt lazily on the first approximate
	// query.
	Approx *ApproxOptions
}

// Load reads a snapshot written by Save. Corrupt input — a flipped byte,
// truncation, or garbage — is reported as an error wrapping
// snapshot.ErrCorrupt; it never panics.
func Load(r io.Reader) (*DB, error) { return LoadWith(r, LoadOptions{}) }

// LoadWith is Load with serving options. The filter index is rebuilt by
// STR bulk load from the persisted centroids, so opening a snapshot does
// no matching-distance work and no centroid recomputation; the loaded
// view's epoch is the snapshot's.
func LoadWith(r io.Reader, opt LoadOptions) (*DB, error) {
	dec, err := snapshot.NewDecoder(r, snapshot.DecodeOptions{Tracker: opt.Tracker})
	if err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	hdr := dec.Header()
	cfg := Config{
		Dim:          hdr.Dim,
		MaxCard:      hdr.MaxCard,
		Omega:        hdr.Omega,
		Tracker:      opt.Tracker,
		Workers:      opt.Workers,
		MaxDelta:     opt.MaxDelta,
		CompactRatio: opt.CompactRatio,
		Approx:       opt.Approx,
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := &DB{cfg: cfg, omega: hdr.Omega}
	baseSets := mapStore{}
	var (
		ids  []uint64
		sets []vectorset.Flat
	)
	for {
		// Each object decodes into one flat buffer (no per-vector
		// allocation) and is stored in that layout directly.
		id, set, err := dec.NextFlat()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("vsdb: %w", err)
		}
		if _, dup := baseSets[id]; dup {
			return nil, fmt.Errorf("vsdb: snapshot repeats id %d", id)
		}
		if err := db.checkFlat(id, set); err != nil {
			return nil, err
		}
		baseSets[id] = set
		ids = append(ids, id)
		sets = append(sets, set)
	}
	intIDs := make([]int, len(ids))
	for i, id := range ids {
		intIDs[i] = int(id)
	}
	base := filter.NewBulk(db.filterConfig(), sets, intIDs, dec.Centroids())
	if blk := dec.Sketches(); blk != nil && cfg.Approx != nil && blk.Params == cfg.Approx.params() {
		// Adoption failure (a count mismatch cannot happen here; belt and
		// suspenders) just means the lazy rebuild runs instead.
		_ = base.AttachSketches(blk)
	}
	db.cur.Store(&view{
		seq:      dec.Seq(),
		base:     base,
		baseSets: baseSets,
		ids:      ids,
	})
	if opt.WALPath != "" {
		if err := db.AttachWAL(opt.WALPath, WALOptions{NoSync: opt.WALNoSync}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// SaveFile writes the snapshot to path (atomically via a sibling
// temporary file).
func (db *DB) SaveFile(path string) error {
	return db.saveViewFile(db.cur.Load(), path)
}

func (db *DB) saveViewFile(v *view, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.saveView(v, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot file written by SaveFile.
func LoadFile(path string, opt LoadOptions) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWith(f, opt)
}
