package vsdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/voxset/voxset/internal/wal"
)

// Tests for the durability half of the live-update engine: WAL-backed
// reopen, checkpoint truncation, recovery from arbitrary-length WAL
// prefixes (every byte offset), and snapshot+WAL-suffix fingerprint
// equality with the live database.

func liveConfig(dir string) Config {
	return Config{
		Dim:       3,
		MaxCard:   3,
		Omega:     []float64{1, 0.5, -0.25},
		MaxDelta:  64,
		WALPath:   filepath.Join(dir, "live.wal"),
		WALNoSync: true,
	}
}

// liveMut is one recorded mutation, replayable against a model map.
type liveMut struct {
	del bool
	id  uint64
	set [][]float64
}

// genLiveMuts produces n valid mutations (inserts, deletes, occasional
// delete+reinsert of the same id) from the seed.
func genLiveMuts(seed int64, n int) []liveMut {
	rng := rand.New(rand.NewSource(seed))
	live := []uint64{}
	next := uint64(0)
	muts := make([]liveMut, 0, n)
	for len(muts) < n {
		if rng.Intn(3) == 0 && len(live) > 0 {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			muts = append(muts, liveMut{del: true, id: id})
			continue
		}
		// Reinsert a deleted id a third of the time.
		id := next + 1
		for _, m := range muts {
			if m.del && m.id < id && rng.Intn(3) == 0 {
				alive := false
				for _, l := range live {
					if l == m.id {
						alive = true
						break
					}
				}
				if !alive {
					id = m.id
					break
				}
			}
		}
		if id == next+1 {
			next++
		}
		set := make([][]float64, 1+rng.Intn(3))
		for i := range set {
			set[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		live = append(live, id)
		muts = append(muts, liveMut{id: id, set: set})
	}
	return muts
}

// applyMuts plays muts[:n] into a model map of live sets.
func applyMuts(muts []liveMut, n int) map[uint64][][]float64 {
	m := map[uint64][][]float64{}
	for _, mu := range muts[:n] {
		if mu.del {
			delete(m, mu.id)
		} else {
			m[mu.id] = mu.set
		}
	}
	return m
}

func mutate(t *testing.T, db *DB, mu liveMut) {
	t.Helper()
	if mu.del {
		if err := db.Delete(mu.id); err != nil {
			t.Fatalf("delete(%d): %v", mu.id, err)
		}
	} else if err := db.Insert(mu.id, mu.set); err != nil {
		t.Fatalf("insert(%d): %v", mu.id, err)
	}
}

// checkState verifies the database holds exactly the model's live sets.
func checkState(t *testing.T, db *DB, model map[uint64][][]float64, ctx string) {
	t.Helper()
	if db.Len() != len(model) {
		t.Fatalf("%s: Len() = %d, want %d", ctx, db.Len(), len(model))
	}
	for id, set := range model {
		got := db.Get(id)
		if got == nil {
			t.Fatalf("%s: id %d missing", ctx, id)
		}
		if fmt.Sprint(got) != fmt.Sprint(set) {
			t.Fatalf("%s: id %d = %v, want %v", ctx, id, got, set)
		}
	}
}

// TestWALReopenRestoresState: every mutation is durable before it is
// visible, so Close + Open on the same WAL reproduces the exact state
// and epoch — no snapshot needed.
func TestWALReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(dir)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	muts := genLiveMuts(7, 150)
	for _, mu := range muts {
		mutate(t, db, mu)
	}
	epoch := db.Epoch()
	if epoch != uint64(len(muts)) {
		t.Fatalf("epoch %d after %d mutations", epoch, len(muts))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Epoch() != epoch {
		t.Fatalf("reopened epoch %d, want %d", re.Epoch(), epoch)
	}
	checkState(t, re, applyMuts(muts, len(muts)), "reopen")
}

// TestCheckpointTruncatesWAL: Checkpoint persists a snapshot and resets
// the log; later mutations land in the short log, and snapshot+suffix
// replay reproduces the live state.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(dir)
	snap := filepath.Join(dir, "ckpt.vsnap")
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	muts := genLiveMuts(11, 120)
	for _, mu := range muts[:80] {
		mutate(t, db, mu)
	}
	if n := db.WALRecords(); n != 80 {
		t.Fatalf("WALRecords = %d before checkpoint, want 80", n)
	}
	if err := db.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	if n := db.WALRecords(); n != 0 {
		t.Fatalf("WALRecords = %d after checkpoint, want 0", n)
	}
	if db.Epoch() != 80 {
		t.Fatalf("checkpoint changed the epoch to %d", db.Epoch())
	}
	for _, mu := range muts[80:] {
		mutate(t, db, mu)
	}
	if n := db.WALRecords(); n != 40 {
		t.Fatalf("WALRecords = %d after suffix, want 40", n)
	}

	re, err := LoadFile(snap, LoadOptions{WALPath: cfg.WALPath, WALNoSync: true, MaxDelta: cfg.MaxDelta})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != db.Epoch() {
		t.Fatalf("snapshot+suffix epoch %d, want %d", re.Epoch(), db.Epoch())
	}
	checkState(t, re, applyMuts(muts, len(muts)), "snapshot+suffix")
}

// TestWALPrefixRecovery is the crash matrix: for EVERY byte offset of a
// real WAL, the prefix either strictly replays (when the cut lands on a
// frame boundary) or fails with ErrCorrupt; and opening a database on
// that prefix always recovers exactly the longest fully-framed prefix
// of the mutation history — never a panic, never a silently shortened
// record, never a half-applied mutation.
func TestWALPrefixRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(dir)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	muts := genLiveMuts(3, 16)
	for _, mu := range muts {
		mutate(t, db, mu)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}

	step := 1
	if testing.Short() {
		step = 7
	}
	for cut := 0; cut <= len(data); cut += step {
		prefix := data[:cut]

		// Strict replay accepts only fully-framed logs (a cut exactly on a
		// frame boundary is indistinguishable from a complete log); any
		// other cut must wrap ErrCorrupt.
		_, recs, strictErr := wal.ReplayBytes(prefix)
		if strictErr != nil && !errors.Is(strictErr, wal.ErrCorrupt) {
			t.Fatalf("cut %d: strict replay error %v does not wrap ErrCorrupt", cut, strictErr)
		}

		// Recovery: the DB opens on the prefix and lands on a fully-framed
		// prefix state.
		sub := t.TempDir()
		pcfg := liveConfig(sub)
		if err := os.WriteFile(pcfg.WALPath, prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(pcfg)
		if err != nil {
			t.Fatalf("cut %d: recovery open failed: %v", cut, err)
		}
		n := int(re.Epoch())
		if n > len(muts) {
			t.Fatalf("cut %d: recovered %d records from a %d-record log", cut, n, len(muts))
		}
		if strictErr == nil && cut > 0 && n != len(recs) {
			t.Fatalf("cut %d: clean prefix has %d records but recovery applied %d", cut, len(recs), n)
		}
		checkState(t, re, applyMuts(muts, n), fmt.Sprintf("cut %d (recovered %d/%d records)", cut, n, len(muts)))

		// The recovered log must be appendable: one more insert, then a
		// clean reopen sees it.
		if err := re.Insert(999999, [][]float64{{1, 2, 3}}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, err := Open(pcfg)
		if err != nil {
			t.Fatalf("cut %d: reopen after recovery append: %v", cut, err)
		}
		if re2.Get(999999) == nil {
			t.Fatalf("cut %d: post-recovery append lost on reopen", cut)
		}
		re2.Close()
	}
}

// TestFingerprintLiveVsReplayed: the snapshot of a database
// reconstructed from checkpoint + WAL suffix is byte-identical to the
// snapshot of the live database it mirrors, including after
// delete+reinsert and compaction.
func TestFingerprintLiveVsReplayed(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(dir)
	snap := filepath.Join(dir, "mid.vsnap")
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	muts := genLiveMuts(17, 200)
	for i, mu := range muts {
		mutate(t, db, mu)
		if i == 99 {
			if err := db.Checkpoint(snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Exercise delete+reinsert+compact explicitly on top of the trace.
	if err := db.Insert(777777, [][]float64{{1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(777777); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(777777, [][]float64{{2, 2, 2}, {3, 3, 3}}); err != nil {
		t.Fatal(err)
	}
	db.Compact()

	var liveBuf bytes.Buffer
	if err := db.Save(&liveBuf); err != nil {
		t.Fatal(err)
	}

	re, err := LoadFile(snap, LoadOptions{WALPath: cfg.WALPath, WALNoSync: true, MaxDelta: cfg.MaxDelta})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.Compact() // same representation as the live side
	var replayBuf bytes.Buffer
	if err := re.Save(&replayBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveBuf.Bytes(), replayBuf.Bytes()) {
		t.Fatalf("snapshot fingerprints diverge: live %d bytes, replayed %d bytes", liveBuf.Len(), replayBuf.Len())
	}
	if got := re.Get(777777); fmt.Sprint(got) != fmt.Sprint([][]float64{{2, 2, 2}, {3, 3, 3}}) {
		t.Fatalf("reinserted object after replay = %v", got)
	}
}

// TestUncompactedSnapshotFingerprint: Save on an UNcompacted live view
// (delta objects + tombstones outstanding) must equal Save on the
// snapshot+suffix reconstruction without forcing compaction on either
// side — the snapshot layer serializes logical state, not
// representation.
func TestUncompactedSnapshotFingerprint(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(dir)
	cfg.MaxDelta = -1 // disable auto-compaction entirely
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Bulk inserts fold straight into the filter base, so the deletes
	// below leave tombstones there; the per-item inserts stay in the
	// delta memtable (auto-compaction is off).
	rng := rand.New(rand.NewSource(23))
	ids := make([]uint64, 30)
	sets := make([][][]float64, 30)
	for i := range ids {
		ids[i] = uint64(i + 1)
		sets[i] = [][]float64{{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}}
	}
	if err := db.BulkInsert(ids, sets); err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 5; id++ {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(101); id <= 110; id++ {
		if err := db.Insert(id, [][]float64{{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}}); err != nil {
			t.Fatal(err)
		}
	}
	if db.DeltaLen() == 0 || db.TombstoneRatio() == 0 {
		t.Fatalf("precondition: want outstanding delta and tombstones, got %d / %v",
			db.DeltaLen(), db.TombstoneRatio())
	}
	var liveBuf bytes.Buffer
	if err := db.Save(&liveBuf); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{
		Dim: cfg.Dim, MaxCard: cfg.MaxCard, Omega: cfg.Omega,
		MaxDelta: -1, WALPath: cfg.WALPath, WALNoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var replayBuf bytes.Buffer
	if err := re.Save(&replayBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveBuf.Bytes(), replayBuf.Bytes()) {
		t.Fatal("uncompacted live snapshot differs from WAL-replayed snapshot")
	}
}

// TestAttachWALRejectsGap: a WAL whose BaseSeq is ahead of the database
// epoch implies lost mutations; attaching it must fail loudly instead
// of silently dropping history.
func TestAttachWALRejectsGap(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(dir)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mu := range genLiveMuts(29, 40) {
		mutate(t, db, mu)
	}
	snap := filepath.Join(dir, "gap.vsnap")
	if err := db.Checkpoint(snap); err != nil { // WAL BaseSeq is now 40
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh empty database (epoch 0) cannot adopt a log starting at 40.
	_, err = Open(cfg)
	if err == nil {
		t.Fatal("open with a gapped WAL succeeded")
	}
	// The checkpoint snapshot CAN adopt it.
	re, err := LoadFile(snap, LoadOptions{WALPath: cfg.WALPath, WALNoSync: true})
	if err != nil {
		t.Fatalf("snapshot + matching WAL: %v", err)
	}
	re.Close()
}
