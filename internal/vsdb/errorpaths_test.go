package vsdb

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vectorset"
)

// writePagedFixture writes a valid paged snapshot of n objects at path
// and returns its raw bytes.
func writePagedFixture(t *testing.T, path string, n int) []byte {
	t.Helper()
	const (
		dim = 4
		mc  = 3
	)
	w, err := snapshot.CreatePaged(path, snapshot.PagedWriterOptions{
		Dim: dim, MaxCard: mc, Omega: make([]float64, dim),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		card := 1 + i%mc
		data := make([]float64, card*dim)
		for j := range data {
			data[j] = rng.NormFloat64()
		}
		if err := w.Append(uint64(i+1), vectorset.Flat{Data: data, Card: card, Dim: dim}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// countFDs returns the number of open file descriptors, or -1 where
// /proc is unavailable.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestOpenFileCorruptionErrorPaths: every class of snapshot damage —
// zero-length file, foreign magic, a truncated page CRC table, a CRC
// flip inside the centroid region — fails OpenFile and ConvertFile with
// an error wrapping snapshot.ErrCorrupt, never a panic, and releases the
// mapping (no descriptor leaks; the path is immediately reusable).
func TestOpenFileCorruptionErrorPaths(t *testing.T) {
	dir := t.TempDir()
	pristine := filepath.Join(dir, "pristine.vsnap")
	raw := writePagedFixture(t, pristine, 500)

	// Region geometry, for aiming the centroid flip: without a sketch
	// tail, fileSize = crcStart + (crcStart/pageSize)·4.
	r, err := snapshot.OpenPaged(pristine, snapshot.PagedReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ps := int64(r.PageSize())
	r.Close()
	crcStart := int64(len(raw)) / (ps + 4) * ps

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"zero-length", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-magic", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("NOTSNAPS"), 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-page-table", func(t *testing.T, path string) {
			if err := os.Truncate(path, int64(len(raw))-6); err != nil {
				t.Fatal(err)
			}
		}},
		{"centroid-crc-flip", func(t *testing.T, path string) {
			// Inside the last page of the centroid region (which ends at
			// crcStart): header and offsets stay valid, so only the eager
			// centroid check can catch it.
			flipPagedByte(t, path, crcStart-ps+8)
		}},
	}

	before := countFDs()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".vsnap")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path)

			if db, err := OpenFile(path, LoadOptions{}); !errors.Is(err, snapshot.ErrCorrupt) {
				if db != nil {
					db.Close()
				}
				t.Fatalf("OpenFile = %v, want ErrCorrupt", err)
			}
			dst := filepath.Join(dir, tc.name+"-conv.vsnap")
			if err := snapshot.ConvertFile(path, dst, 0); !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("ConvertFile = %v, want ErrCorrupt", err)
			}

			// The failed opens must not pin the path: replace the damaged
			// file in place and open it for real.
			if err := os.Remove(path); err != nil {
				t.Fatalf("removing damaged file: %v", err)
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			db, err := OpenFile(path, LoadOptions{})
			if err != nil {
				t.Fatalf("reopening recreated file: %v", err)
			}
			if db.Len() != 500 {
				t.Fatalf("recreated file has %d objects, want 500", db.Len())
			}
			db.Close()
		})
	}
	if after := countFDs(); before != -1 && after > before {
		t.Fatalf("descriptor leak across failed opens: %d before, %d after", before, after)
	}
}

func flipPagedByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
