package vsdb

import (
	"github.com/voxset/voxset/internal/index/sketch"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/vectorset"
)

// Approximate queries (DESIGN.md §12): with Config.Approx (or
// LoadOptions.Approx) set, the KNNApprox/RangeApprox family answers
// through the sketch candidate tier — the base index proposes the
// Hamming-closest objects and only those are refined with the exact
// matching distance. Every returned distance is still exact; the
// approximation is recall (base objects the sketch scan failed to
// propose are missed). Delta-memtable objects are always exact-scanned,
// exactly as in the exact path, so a freshly inserted object is never
// missed. Without Approx configured the same methods ARE the exact
// engine — byte-identical results by construction — so callers can wire
// one code path and toggle the tier by configuration.

// Default candidate-budget policy.
const (
	// DefaultKNNFactor over-fetches k-nn candidates: budget = k · factor.
	DefaultKNNFactor = 32
	// DefaultMinCandidates floors the k-nn budget (small k would otherwise
	// starve the refinement stage).
	DefaultMinCandidates = 128
	// DefaultRangeCandidates is the ε-range candidate budget (range
	// queries have no k to scale from).
	DefaultRangeCandidates = 512
)

// ApproxOptions configures the approximate candidate tier.
type ApproxOptions struct {
	// Bits, Active, Seed override the sketch parameters
	// (sketch.DefaultParams for any zero field). Persisted sketch tables
	// are only adopted when all three match; otherwise the table is
	// rebuilt lazily on the first approximate query.
	Bits   int
	Active int
	Seed   uint64
	// KNNFactor scales the k-nn candidate budget: budget = k · KNNFactor,
	// floored at MinCandidates. 0 means DefaultKNNFactor.
	KNNFactor int
	// MinCandidates floors the k-nn budget. 0 means DefaultMinCandidates.
	MinCandidates int
	// RangeCandidates is the ε-range candidate budget. 0 means
	// DefaultRangeCandidates.
	RangeCandidates int
}

// params resolves the sketch parameters with defaults applied.
func (a *ApproxOptions) params() sketch.Params {
	p := sketch.DefaultParams()
	if a.Bits != 0 {
		p.Bits = a.Bits
	}
	if a.Active != 0 {
		p.Active = a.Active
	}
	if a.Seed != 0 {
		p.Seed = a.Seed
	}
	return p
}

func (a *ApproxOptions) knnBudget(k int) int {
	f := a.KNNFactor
	if f <= 0 {
		f = DefaultKNNFactor
	}
	m := a.MinCandidates
	if m <= 0 {
		m = DefaultMinCandidates
	}
	return max(k*f, m)
}

func (a *ApproxOptions) rangeBudget() int {
	if a.RangeCandidates > 0 {
		return a.RangeCandidates
	}
	return DefaultRangeCandidates
}

// ApproxEnabled reports whether the approximate tier is configured; when
// false the Approx query methods run the exact engine.
func (db *DB) ApproxEnabled() bool { return db.cfg.Approx != nil }

// SketchCandidates returns the cumulative number of candidates proposed
// by approximate scans — the tier's analogue of Refinements. The ratio
// Refinements/SketchCandidates over an approximate workload is ~1 (each
// proposed candidate is refined once, plus delta scans).
func (db *DB) SketchCandidates() int64 {
	return db.skExtra.Load() + db.cur.Load().base.SketchCandidates()
}

// KNNApprox answers KNN through the approximate tier: exact distances
// over a sketch-proposed candidate set. With the tier unconfigured it is
// exactly KNN.
func (db *DB) KNNApprox(query [][]float64, k int) []Neighbor {
	return db.knnApproxView(db.cur.Load(), vectorset.FlatFromRows(query), k)
}

func (db *DB) knnApproxView(v *view, query vectorset.Flat, k int) []Neighbor {
	if db.cfg.Approx == nil {
		return db.knnView(v, query, k)
	}
	if k > len(v.ids) {
		k = len(v.ids)
	}
	if k <= 0 {
		return nil
	}
	// Tombstones widen both the fetch and the budget: a tombstoned object
	// occupying a candidate slot must not evict a live one.
	budget := db.cfg.Approx.knnBudget(k) + len(v.tomb)
	out := make([]Neighbor, 0, k+len(v.deltaIDs))
	for _, nb := range v.base.KNNApproxFlat(query, k+len(v.tomb), budget) {
		if _, dead := v.tomb[uint64(nb.ID)]; dead {
			continue
		}
		out = append(out, Neighbor{ID: uint64(nb.ID), Dist: nb.Dist})
	}
	out = append(out, db.deltaScan(v, query, -1)...)
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RangeApprox answers Range through the approximate tier: every returned
// object truly lies within eps (distances are exact), but objects the
// sketch scan did not propose are missed — internal/recall's ε-recall
// quantifies how many. With the tier unconfigured it is exactly Range.
func (db *DB) RangeApprox(query [][]float64, eps float64) []Neighbor {
	return db.rangeApproxView(db.cur.Load(), vectorset.FlatFromRows(query), eps)
}

func (db *DB) rangeApproxView(v *view, query vectorset.Flat, eps float64) []Neighbor {
	if db.cfg.Approx == nil {
		return db.rangeView(v, query, eps)
	}
	budget := db.cfg.Approx.rangeBudget() + len(v.tomb)
	out := make([]Neighbor, 0, 16)
	for _, nb := range v.base.RangeApproxFlat(query, eps, budget) {
		if _, dead := v.tomb[uint64(nb.ID)]; dead {
			continue
		}
		out = append(out, Neighbor{ID: uint64(nb.ID), Dist: nb.Dist})
	}
	out = append(out, db.deltaScan(v, query, eps)...)
	sortNeighbors(out)
	return out
}

// KNNBatchApprox is KNNBatch through the approximate tier: one pinned
// epoch view, queries fanned over the worker pool, per-query results
// identical to sequential KNNApprox calls at the same epoch.
func (db *DB) KNNBatchApprox(queries [][][]float64, k int) [][]Neighbor {
	v := db.cur.Load()
	flats := flattenQueries(queries)
	out := make([][]Neighbor, len(queries))
	db.runBatch(len(queries), func(i int) {
		out[i] = db.knnApproxView(v, flats[i], k)
	})
	return out
}

// RangeBatchApprox is RangeBatch through the approximate tier (see
// KNNBatchApprox).
func (db *DB) RangeBatchApprox(queries [][][]float64, eps float64) [][]Neighbor {
	v := db.cur.Load()
	flats := flattenQueries(queries)
	out := make([][]Neighbor, len(queries))
	db.runBatch(len(queries), func(i int) {
		out[i] = db.rangeApproxView(v, flats[i], eps)
	})
	return out
}

// viewSketches returns the signature table of the view's live objects in
// insertion order, for persistence; nil when the tier is unconfigured.
// A compacted view hands out the base's table (building it if no
// approximate query ran yet); otherwise signatures are recomputed per
// live set on the worker pool — bit-identical, each signature being a
// pure function of (params, set).
func (db *DB) viewSketches(v *view) *sketch.Block {
	if db.cfg.Approx == nil {
		return nil
	}
	if v.compacted() {
		return v.base.SketchBlock()
	}
	p := db.cfg.Approx.params()
	proj := sketch.NewProjector(p, db.cfg.Dim)
	wordsPer := p.Words()
	words := make([]uint64, len(v.ids)*wordsPer)
	workers := min(parallel.Workers(db.cfg.Workers, parallel.Auto()), len(v.ids))
	parallel.Run(max(workers, 1), func(w int) {
		sc := proj.NewScratch()
		lo, hi := parallel.Chunk(len(v.ids), max(workers, 1), w)
		for i := lo; i < hi; i++ {
			proj.SketchInto(words[i*wordsPer:(i+1)*wordsPer], v.get(v.ids[i]), sc)
		}
	})
	return &sketch.Block{Params: p, Count: len(v.ids), Words: words}
}
