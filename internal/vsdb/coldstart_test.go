package vsdb

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vectorset"
)

// TestColdStart100k pins the headline serving contract of the paged
// layout: opening a 100 000-object VXSNAP02 snapshot — mmap, header and
// offsets validation, STR bulk load over the centroid region — takes
// under 100 ms, because nothing per-object is decoded. The heap path
// decodes every record up front and is orders of magnitude away from
// this bound at the same scale.
func TestColdStart100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-object fixture; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock bound; race instrumentation invalidates it")
	}
	const (
		n   = 100_000
		dim = 4
		mc  = 3
	)
	path := filepath.Join(t.TempDir(), "big.vsnap")
	w, err := snapshot.CreatePaged(path, snapshot.PagedWriterOptions{
		Dim: dim, MaxCard: mc, Omega: make([]float64, dim),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	row := make([]float64, mc*dim)
	for i := 0; i < n; i++ {
		card := 1 + i%mc
		data := row[:card*dim]
		for j := range data {
			data[j] = rng.Float64() * 10
		}
		if err := w.Append(uint64(i+1), vectorset.Flat{Data: data, Card: card, Dim: dim}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	best := time.Duration(1<<62 - 1)
	for r := 0; r < 5; r++ {
		start := time.Now()
		db, err := OpenFile(path, LoadOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		if db.Len() != n {
			t.Fatalf("opened %d objects, want %d", db.Len(), n)
		}
		if !db.Mapped() {
			db.Close()
			t.Skip("no mmap on this platform; cold-start bound does not apply")
		}
		db.Close()
	}
	// The wall-clock bound only gates under VOXSET_PERF_ASSERT=1: on
	// shared CI machines it flakes on scheduler noise, while the
	// correctness and allocation assertions above hold anywhere.
	if best >= 100*time.Millisecond {
		if os.Getenv("VOXSET_PERF_ASSERT") == "1" {
			t.Fatalf("cold start on %d objects took %v, want < 100ms", n, best)
		}
		t.Logf("cold start on %d objects took %v (bound 100ms not enforced; set VOXSET_PERF_ASSERT=1)", n, best)
	}

	// The opened database must actually serve: one k-nn over the mapping.
	db, err := OpenFile(path, LoadOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	q := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	if nn := db.KNN(q, 5); len(nn) != 5 {
		t.Fatalf("knn over mapped base returned %d neighbors, want 5", len(nn))
	}
}
