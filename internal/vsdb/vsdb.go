// Package vsdb is the "more general system for managing vector-set-
// represented objects" the paper's conclusion announces: a standalone
// database for objects represented as sets of d-dimensional feature
// vectors under the minimal matching distance, independent of the CAD
// pipeline. It supports insertion and deletion, exact k-nn and ε-range
// queries through the extended-centroid filter (when the configured
// ground distance and weight function satisfy the Lemma 2 conditions) or
// an exhaustive scan otherwise, and snapshot persistence.
//
// The paper names image and biomolecule retrieval as target applications;
// examples/imagesearch demonstrates the former with color-region
// signatures.
package vsdb

import (
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/storage"
)

// Config parameterizes a vector set database.
type Config struct {
	// Dim is the vector dimensionality (> 0).
	Dim int
	// MaxCard is the maximum set cardinality k (> 0).
	MaxCard int
	// Omega is the centroid padding vector and the reference point of the
	// default weight function w_ω(x) = ‖x−ω‖₂ (zero vector if nil).
	Omega []float64
	// Tracker, if non-nil, is charged for simulated I/O.
	Tracker *storage.Tracker
	// Workers is the number of refinement workers per query, passed to the
	// filter pipeline. 0 consults the VOXSET_WORKERS environment variable
	// and defaults to 1 (sequential). Query results are identical at any
	// setting.
	Workers int
}

func (c Config) validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("vsdb: Dim must be positive, got %d", c.Dim)
	}
	if c.MaxCard <= 0 {
		return fmt.Errorf("vsdb: MaxCard must be positive, got %d", c.MaxCard)
	}
	if c.Omega != nil && len(c.Omega) != c.Dim {
		return fmt.Errorf("vsdb: Omega has dim %d, want %d", len(c.Omega), c.Dim)
	}
	return nil
}

// DB is a vector set database. It is not safe for concurrent mutation.
type DB struct {
	cfg   Config
	omega []float64

	sets    map[uint64][][]float64
	ids     []uint64 // insertion order of live ids
	ix      *filter.Index
	deleted int // tombstones inside ix
}

// Open creates an empty database.
func Open(cfg Config) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	omega := cfg.Omega
	if omega == nil {
		omega = make([]float64, cfg.Dim)
	}
	db := &DB{
		cfg:   cfg,
		omega: omega,
		sets:  map[uint64][][]float64{},
	}
	db.rebuildIndex()
	return db, nil
}

func (db *DB) weight() dist.WeightFunc { return dist.WeightNormTo(db.omega) }

func (db *DB) rebuildIndex() {
	db.ix = filter.New(filter.Config{
		K:       db.cfg.MaxCard,
		Dim:     db.cfg.Dim,
		Ground:  dist.L2,
		Weight:  db.weight(),
		Omega:   db.omega,
		Tracker: db.cfg.Tracker,
		Workers: db.cfg.Workers,
	})
	db.deleted = 0
	for _, id := range db.ids {
		db.ix.Add(db.sets[id], int(id))
	}
}

// Len returns the number of live objects.
func (db *DB) Len() int { return len(db.ids) }

// Dim returns the configured vector dimensionality.
func (db *DB) Dim() int { return db.cfg.Dim }

// MaxCard returns the configured maximum set cardinality k.
func (db *DB) MaxCard() int { return db.cfg.MaxCard }

// IDs returns the live object ids in insertion order (a copy).
func (db *DB) IDs() []uint64 { return append([]uint64(nil), db.ids...) }

// Refinements returns the cumulative number of exact matching-distance
// evaluations performed by queries since the last reset — the filter
// pipeline's selectivity measure, surfaced for serving metrics.
func (db *DB) Refinements() int64 { return db.ix.Refinements() }

// ResetRefinements zeroes the refinement counter.
func (db *DB) ResetRefinements() { db.ix.ResetRefinements() }

// Insert stores the vector set under the caller-chosen id. Inserting an
// existing id is an error (use Delete first to replace).
func (db *DB) Insert(id uint64, set [][]float64) error {
	if _, dup := db.sets[id]; dup {
		return fmt.Errorf("vsdb: id %d already present", id)
	}
	cp, err := db.validateSet(id, set)
	if err != nil {
		return err
	}
	db.register(id, cp)
	return nil
}

// checkSet validates cardinality and dimensions against the configuration.
func (db *DB) checkSet(id uint64, set [][]float64) error {
	if len(set) == 0 {
		return fmt.Errorf("vsdb: empty vector set for id %d", id)
	}
	if len(set) > db.cfg.MaxCard {
		return fmt.Errorf("vsdb: set cardinality %d exceeds MaxCard %d", len(set), db.cfg.MaxCard)
	}
	for i, v := range set {
		if len(v) != db.cfg.Dim {
			return fmt.Errorf("vsdb: vector %d has dim %d, want %d", i, len(v), db.cfg.Dim)
		}
	}
	return nil
}

// validateSet checks cardinality and dimensions and returns a deep copy
// of the set, detached from caller storage.
func (db *DB) validateSet(id uint64, set [][]float64) ([][]float64, error) {
	if err := db.checkSet(id, set); err != nil {
		return nil, err
	}
	cp := make([][]float64, len(set))
	for i, v := range set {
		cp[i] = append([]float64(nil), v...)
	}
	return cp, nil
}

func (db *DB) register(id uint64, cp [][]float64) {
	db.sets[id] = cp
	db.ids = append(db.ids, id)
	db.ix.Add(cp, int(id))
}

// BulkInsert stores sets[i] under ids[i] for every i, validating and
// deep-copying the sets on the Config.Workers pool (default one worker
// per CPU for this batch path). Any invalid entry — duplicate id against
// the database or within the batch, empty set, cardinality or dimension
// mismatch — fails the whole call before the database is touched; the
// first error in index order is returned. A successful BulkInsert is
// indistinguishable from sequential Inserts in input order.
func (db *DB) BulkInsert(ids []uint64, sets [][][]float64) error {
	if len(ids) != len(sets) {
		return fmt.Errorf("vsdb: BulkInsert got %d ids for %d sets", len(ids), len(sets))
	}
	seen := make(map[uint64]int, len(ids))
	for i, id := range ids {
		if _, dup := db.sets[id]; dup {
			return fmt.Errorf("vsdb: id %d already present", id)
		}
		if j, dup := seen[id]; dup {
			return fmt.Errorf("vsdb: id %d duplicated within batch (indexes %d and %d)", id, j, i)
		}
		seen[id] = i
	}
	cps := make([][][]float64, len(sets))
	errs := make([]error, len(sets))
	w := parallel.Workers(db.cfg.Workers, parallel.Auto())
	parallel.ForEach(len(sets), w, func(i int) {
		cps[i], errs[i] = db.validateSet(ids[i], sets[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, cp := range cps {
		db.register(ids[i], cp)
	}
	return nil
}

// Get returns the stored vector set (nil if absent).
func (db *DB) Get(id uint64) [][]float64 { return db.sets[id] }

// Delete removes an object. The filter index keeps a tombstone until
// enough deletions accumulate to warrant a rebuild.
func (db *DB) Delete(id uint64) error {
	if _, ok := db.sets[id]; !ok {
		return fmt.Errorf("vsdb: id %d not found", id)
	}
	delete(db.sets, id)
	for i, v := range db.ids {
		if v == id {
			db.ids = append(db.ids[:i], db.ids[i+1:]...)
			break
		}
	}
	db.deleted++
	if db.deleted*2 > db.Len()+db.deleted {
		db.rebuildIndex()
	}
	return nil
}

// Distance computes the minimal matching distance between two stored or
// ad-hoc vector sets under the database's configuration. Malformed input
// panics; use DistanceChecked for sets from untrusted sources.
func (db *DB) Distance(a, b [][]float64) float64 {
	return dist.MatchingDistance(a, b, dist.L2, db.weight())
}

// DistanceChecked is Distance with input validation: ragged vector sets
// (vectors of differing dimension, as can arrive from user input) are
// reported as an error instead of a panic.
func (db *DB) DistanceChecked(a, b [][]float64) (float64, error) {
	return dist.MatchingDistanceChecked(a, b, dist.L2, db.weight())
}

// Neighbor is one query result.
type Neighbor struct {
	ID   uint64
	Dist float64
}

// KNN returns the k nearest stored objects to the query set.
func (db *DB) KNN(query [][]float64, k int) []Neighbor {
	if k > db.Len() {
		k = db.Len()
	}
	if k <= 0 {
		return nil
	}
	// Over-fetch to survive tombstones, then drop them.
	res := db.ix.KNN(query, k+db.deleted)
	return db.liveNeighbors(res, k)
}

// Range returns all stored objects within eps of the query set.
func (db *DB) Range(query [][]float64, eps float64) []Neighbor {
	res := db.ix.Range(query, eps)
	return db.liveNeighbors(res, len(res))
}

func (db *DB) liveNeighbors(res []index.Neighbor, limit int) []Neighbor {
	out := make([]Neighbor, 0, limit)
	for _, nb := range res {
		id := uint64(nb.ID)
		if _, live := db.sets[id]; !live {
			continue
		}
		out = append(out, Neighbor{ID: id, Dist: nb.Dist})
		if len(out) == limit {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ---------------------------------------------------------------------------
// Persistence (DESIGN.md §7): the versioned, checksummed binary format of
// internal/snapshot, carrying the objects in insertion order plus the
// extended centroids of the filter index so Load can STR-bulk-load the
// X-tree without re-deriving the access structure.

// Save writes the database and its filter/X-tree index as a version-1
// snapshot stream. The encoding is deterministic: two databases with
// identical contents (same configuration, ids, sets and insertion order)
// produce byte-identical snapshots, so a Save → Load → Save round trip is
// a fixed point.
func (db *DB) Save(w io.Writer) error {
	s := snapshot.DB{
		Dim:       db.cfg.Dim,
		MaxCard:   db.cfg.MaxCard,
		Omega:     db.omega,
		IDs:       db.ids,
		Sets:      make([][][]float64, 0, len(db.ids)),
		Centroids: db.liveCentroids(),
	}
	for _, id := range db.ids {
		s.Sets = append(s.Sets, db.sets[id])
	}
	return snapshot.Encode(w, &s)
}

// liveCentroids returns the extended centroids of the live objects in
// insertion order. While the filter index has no tombstones its stored
// centroids align one-to-one with db.ids; after deletions they are
// recomputed per live set (bit-identical, the centroid is deterministic).
func (db *DB) liveCentroids() [][]float64 {
	out := make([][]float64, len(db.ids))
	if db.deleted == 0 {
		for i := range db.ids {
			out[i] = db.ix.Centroid(i)
		}
		return out
	}
	for i, id := range db.ids {
		out[i] = db.centroidOf(db.sets[id])
	}
	return out
}

// centroidOf computes the extended centroid C_{k,ω} of a set under the
// database configuration (matching filter index centroids bit for bit).
func (db *DB) centroidOf(set [][]float64) []float64 {
	c := make([]float64, db.cfg.Dim)
	for _, v := range set {
		for i := range c {
			c[i] += v[i]
		}
	}
	pad := float64(db.cfg.MaxCard - len(set))
	for i := range c {
		c[i] = (c[i] + pad*db.omega[i]) / float64(db.cfg.MaxCard)
	}
	return c
}

// LoadOptions tunes Load beyond the persisted configuration.
type LoadOptions struct {
	// Tracker, if non-nil, is installed as the database's I/O tracker and
	// charged for reading the snapshot itself (one sequential scan of its
	// pages under the §5.4 cost model).
	Tracker *storage.Tracker
	// Workers is the refinement worker count for the loaded database (same
	// semantics as Config.Workers).
	Workers int
}

// Load reads a snapshot written by Save. Corrupt input — a flipped byte,
// truncation, or garbage — is reported as an error wrapping
// snapshot.ErrCorrupt; it never panics.
func Load(r io.Reader) (*DB, error) { return LoadWith(r, LoadOptions{}) }

// LoadWith is Load with serving options. The filter index is rebuilt by
// STR bulk load from the persisted centroids, so opening a snapshot does
// no matching-distance work and no centroid recomputation.
func LoadWith(r io.Reader, opt LoadOptions) (*DB, error) {
	dec, err := snapshot.NewDecoder(r, snapshot.DecodeOptions{Tracker: opt.Tracker})
	if err != nil {
		return nil, fmt.Errorf("vsdb: %w", err)
	}
	hdr := dec.Header()
	cfg := Config{
		Dim:     hdr.Dim,
		MaxCard: hdr.MaxCard,
		Omega:   hdr.Omega,
		Tracker: opt.Tracker,
		Workers: opt.Workers,
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := &DB{cfg: cfg, omega: hdr.Omega, sets: map[uint64][][]float64{}}
	var sets [][][]float64
	for {
		id, set, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("vsdb: %w", err)
		}
		if _, dup := db.sets[id]; dup {
			return nil, fmt.Errorf("vsdb: snapshot repeats id %d", id)
		}
		if err := db.checkSet(id, set); err != nil {
			return nil, err
		}
		db.sets[id] = set
		db.ids = append(db.ids, id)
		sets = append(sets, set)
	}
	ids := make([]int, len(db.ids))
	for i, id := range db.ids {
		ids[i] = int(id)
	}
	db.ix = filter.NewBulk(filter.Config{
		K:       cfg.MaxCard,
		Dim:     cfg.Dim,
		Ground:  dist.L2,
		Weight:  db.weight(),
		Omega:   db.omega,
		Tracker: cfg.Tracker,
		Workers: cfg.Workers,
	}, sets, ids, dec.Centroids())
	return db, nil
}

// SaveFile writes the snapshot to path (atomically via a sibling
// temporary file).
func (db *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot file written by SaveFile.
func LoadFile(path string, opt LoadOptions) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWith(f, opt)
}
