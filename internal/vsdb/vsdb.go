// Package vsdb is the "more general system for managing vector-set-
// represented objects" the paper's conclusion announces: a standalone
// database for objects represented as sets of d-dimensional feature
// vectors under the minimal matching distance, independent of the CAD
// pipeline. It supports insertion and deletion, exact k-nn and ε-range
// queries through the extended-centroid filter (when the configured
// ground distance and weight function satisfy the Lemma 2 conditions) or
// an exhaustive scan otherwise, and snapshot persistence.
//
// # Live updates (DESIGN.md §8)
//
// The database is safe for concurrent use: any number of goroutines may
// query while others mutate. Reads are lock-free — every query runs
// against an immutable view published through an atomic pointer
// (RCU-style), so a KNN in flight keeps its consistent state while
// writers install the next view. Mutators are serialized by an internal
// mutex. A view is three layers:
//
//   - base: the bulk-loaded filter/X-tree index over objects as of the
//     last compaction;
//   - delta: a small exact-scanned memtable of objects inserted since
//     (scanning ≤ MaxDelta sets is cheaper than any index walk, and
//     every delta hit is an exact distance — filter-vs-scan parity
//     holds at every epoch);
//   - tomb: tombstones for deleted base-resident objects, subtracted
//     from base query results.
//
// Compaction folds delta and tomb back into a fresh STR-bulk-loaded
// base; it triggers automatically on the MaxDelta / CompactRatio
// thresholds or explicitly via Compact. Every view carries the mutation
// sequence number (Epoch) used for cache invalidation, snapshot
// alignment, and write-ahead-log replay.
//
// With a WAL attached (Config.WALPath / AttachWAL), every mutation is
// durable before it is visible, and reopening replays the log suffix
// onto the latest snapshot; Checkpoint writes a fresh snapshot and
// truncates the log against it.
//
// The paper names image and biomolecule retrieval as target applications;
// examples/imagesearch demonstrates the former with color-region
// signatures.
package vsdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/index/sketch"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/storage"
	"github.com/voxset/voxset/internal/vectorset"
)

// Default live-update thresholds (DESIGN.md §8).
const (
	// DefaultMaxDelta is the delta-memtable size that triggers a
	// compaction: beyond it the exact scan of unindexed objects starts
	// to rival the filter walk it bypasses.
	DefaultMaxDelta = 256
	// DefaultCompactRatio is the tombstone ratio (deleted base objects
	// over live+deleted) that triggers a compaction.
	DefaultCompactRatio = 0.5
)

// Mutation errors, wrapped with the offending id; test with errors.Is.
var (
	// ErrExists reports an Insert of an id that is already live.
	ErrExists = errors.New("already present")
	// ErrNotFound reports a Delete of an id that is not live.
	ErrNotFound = errors.New("not found")
)

// Config parameterizes a vector set database.
type Config struct {
	// Dim is the vector dimensionality (> 0).
	Dim int
	// MaxCard is the maximum set cardinality k (> 0).
	MaxCard int
	// Omega is the centroid padding vector and the reference point of the
	// default weight function w_ω(x) = ‖x−ω‖₂ (zero vector if nil).
	Omega []float64
	// Tracker, if non-nil, is charged for simulated I/O.
	Tracker *storage.Tracker
	// Workers is the number of refinement workers per query, passed to the
	// filter pipeline. 0 consults the VOXSET_WORKERS environment variable
	// and defaults to 1 (sequential). Query results are identical at any
	// setting.
	Workers int

	// WALPath, if non-empty, attaches a write-ahead log at that path on
	// Open: existing records are replayed, and every subsequent mutation
	// is durable before it is visible (see AttachWAL).
	WALPath string
	// WALNoSync skips the fsync per mutation batch (see wal.FileOptions).
	WALNoSync bool
	// MaxDelta is the delta-memtable size that triggers auto-compaction.
	// 0 means DefaultMaxDelta; negative disables the threshold.
	MaxDelta int
	// CompactRatio is the tombstone ratio that triggers auto-compaction.
	// 0 means DefaultCompactRatio; negative disables the threshold.
	CompactRatio float64

	// Approx, if non-nil, enables the approximate candidate tier
	// (DESIGN.md §12) behind the KNNApprox/RangeApprox methods. The exact
	// query methods are unaffected.
	Approx *ApproxOptions
}

func (c Config) validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("vsdb: Dim must be positive, got %d", c.Dim)
	}
	if c.MaxCard <= 0 {
		return fmt.Errorf("vsdb: MaxCard must be positive, got %d", c.MaxCard)
	}
	if c.Omega != nil && len(c.Omega) != c.Dim {
		return fmt.Errorf("vsdb: Omega has dim %d, want %d", len(c.Omega), c.Dim)
	}
	if c.Approx != nil {
		if err := c.Approx.params().Validate(); err != nil {
			return fmt.Errorf("vsdb: %w", err)
		}
	}
	return nil
}

func (c Config) maxDelta() int {
	if c.MaxDelta == 0 {
		return DefaultMaxDelta
	}
	return c.MaxDelta
}

func (c Config) compactRatio() float64 {
	if c.CompactRatio == 0 {
		return DefaultCompactRatio
	}
	return c.CompactRatio
}

// view is one immutable database state. Queries load the current view
// once and run entirely against it; mutators derive the next view and
// publish it atomically. Fields are never written after publication
// (withInsert appends to ids, which is safe: older views never index
// past their own length).
type view struct {
	// seq is the mutation sequence number — the database epoch. It
	// counts Insert/Delete records, never compactions (a compaction
	// changes the representation, not the logical state).
	seq uint64
	// base is the filter/X-tree index as of the last compaction, with
	// baseSets resolving its sets by id (including tombstoned ones).
	// Heap-resident databases use a mapStore of contiguous
	// vectorset.Flat buffers (DESIGN.md §10), owned exclusively by the
	// view history and never written after publication; mmap-backed
	// databases (OpenFile on a paged snapshot) use a snapStore whose
	// sets alias the mapping (DESIGN.md §11).
	base     *filter.Index
	baseSets baseStore
	// tomb marks base-resident ids that have been deleted.
	tomb map[uint64]struct{}
	// delta holds objects inserted since the last compaction, exact-
	// scanned by every query; deltaIDs is its insertion order.
	delta    map[uint64]vectorset.Flat
	deltaIDs []uint64
	// ids is the live object ids in insertion order.
	ids []uint64
}

// live reports whether id is visible in this view.
func (v *view) live(id uint64) bool {
	if _, ok := v.delta[id]; ok {
		return true
	}
	if _, dead := v.tomb[id]; dead {
		return false
	}
	return v.baseSets.baseHas(id)
}

// get returns the flat set of a live id (the zero Flat otherwise).
func (v *view) get(id uint64) vectorset.Flat {
	if set, ok := v.delta[id]; ok {
		return set
	}
	if _, dead := v.tomb[id]; dead {
		return vectorset.Flat{}
	}
	set, _ := v.baseSets.baseGet(id)
	return set
}

// compacted reports whether the view is exactly its base (no delta, no
// tombstones) — the state in which ids aligns with base insertion order.
func (v *view) compacted() bool { return len(v.delta) == 0 && len(v.tomb) == 0 }

// tombRatio is the fraction of base-resident objects that are deleted.
func (v *view) tombRatio() float64 {
	if len(v.tomb) == 0 {
		return 0
	}
	return float64(len(v.tomb)) / float64(len(v.ids)+len(v.tomb))
}

// DB is a vector set database, safe for concurrent queries and
// mutations (queries are lock-free; mutators serialize internally).
type DB struct {
	cfg   Config
	omega []float64

	mu  sync.Mutex // serializes mutators, compaction, checkpointing
	cur atomic.Pointer[view]
	log *walHandle
	// reader is the mapped snapshot backing an OpenFile database (nil
	// for heap-resident ones). Views alias it, so it lives until Close.
	reader *snapshot.PagedReader

	// refExtra accumulates exact-distance evaluations that the current
	// base's counter does not cover: delta scans, plus the harvested
	// counters of bases retired by compaction. skExtra does the same for
	// the sketch-candidate counter of approximate queries.
	refExtra    atomic.Int64
	skExtra     atomic.Int64
	compactions atomic.Int64
}

// Open creates an empty database (attaching the WAL at Config.WALPath,
// if set, and replaying any records it holds).
func Open(cfg Config) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	omega := cfg.Omega
	if omega == nil {
		omega = make([]float64, cfg.Dim)
	}
	db := &DB{cfg: cfg, omega: omega}
	db.cur.Store(&view{
		base:     db.newFilter(),
		baseSets: mapStore{},
	})
	if cfg.WALPath != "" {
		if err := db.AttachWAL(cfg.WALPath, WALOptions{NoSync: cfg.WALNoSync}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) weight() dist.WeightFunc { return dist.WeightNormTo(db.omega) }

func (db *DB) filterConfig() filter.Config {
	var sk *sketch.Params
	if db.cfg.Approx != nil {
		p := db.cfg.Approx.params()
		sk = &p
	}
	return filter.Config{
		Sketch:  sk,
		K:       db.cfg.MaxCard,
		Dim:     db.cfg.Dim,
		Ground:  dist.L2,
		Weight:  db.weight(),
		Omega:   db.omega,
		Tracker: db.cfg.Tracker,
		Workers: db.cfg.Workers,
		// The pair above is exactly the standard configuration the flat
		// kernel specializes (L2 ground, w_ω weights), so refinement can
		// run the allocation-free fast path; results are bit-identical.
		FastL2: true,
	}
}

func (db *DB) newFilter() *filter.Index { return filter.New(db.filterConfig()) }

// queryWorkers is the worker count for delta scans (same resolution as
// the filter pipeline's).
func (db *DB) queryWorkers() int { return parallel.Workers(db.cfg.Workers, 1) }

// Len returns the number of live objects.
func (db *DB) Len() int { return len(db.cur.Load().ids) }

// Dim returns the configured vector dimensionality.
func (db *DB) Dim() int { return db.cfg.Dim }

// MaxCard returns the configured maximum set cardinality k.
func (db *DB) MaxCard() int { return db.cfg.MaxCard }

// Omega returns a copy of the resolved centroid padding vector, so a
// second database (or a sharded cluster adopting this one's data) can be
// opened with bit-identical distance semantics.
func (db *DB) Omega() []float64 { return append([]float64(nil), db.omega...) }

// IDs returns the live object ids in insertion order (a copy).
func (db *DB) IDs() []uint64 {
	v := db.cur.Load()
	return append([]uint64(nil), v.ids...)
}

// Epoch returns the mutation sequence number: it increments once per
// Insert/Delete (a BulkInsert of n objects advances it by n) and is
// stable across compaction and persistence round trips. Serving layers
// key query caches on it.
func (db *DB) Epoch() uint64 { return db.cur.Load().seq }

// DeltaLen returns the number of objects in the delta memtable (inserted
// since the last compaction).
func (db *DB) DeltaLen() int { return len(db.cur.Load().delta) }

// TombstoneRatio returns the fraction of base-resident objects that are
// deleted but not yet compacted away.
func (db *DB) TombstoneRatio() float64 { return db.cur.Load().tombRatio() }

// Tombstones returns the number of base-resident objects that are
// deleted but not yet compacted away. Aggregating layers (the sharded
// cluster coordinator) sum it across databases to derive a global
// tombstone ratio, which the per-database ratio alone cannot give.
func (db *DB) Tombstones() int { return len(db.cur.Load().tomb) }

// Compactions returns the number of compaction passes performed
// (automatic and explicit).
func (db *DB) Compactions() int64 { return db.compactions.Load() }

// Refinements returns the cumulative number of exact matching-distance
// evaluations performed by queries since the last reset — the filter
// pipeline's selectivity measure, surfaced for serving metrics. Delta
// memtable scans count too: each scanned set is an exact evaluation.
// (In-flight queries racing a compaction may lose their evaluations to
// the retiring base's counter; the gauge is monotone, not exact.)
func (db *DB) Refinements() int64 {
	return db.refExtra.Load() + db.cur.Load().base.Refinements()
}

// ResetRefinements zeroes the refinement counter.
func (db *DB) ResetRefinements() {
	db.refExtra.Store(0)
	db.cur.Load().base.ResetRefinements()
}

// Get returns the stored vector set (nil if absent). The rows are views
// into the database's flat buffer; callers must not mutate them.
func (db *DB) Get(id uint64) [][]float64 { return db.cur.Load().get(id).Rows() }

// Distance computes the minimal matching distance between two stored or
// ad-hoc vector sets under the database's configuration. Malformed input
// panics; use DistanceChecked for sets from untrusted sources.
func (db *DB) Distance(a, b [][]float64) float64 {
	return dist.MatchingDistance(a, b, dist.L2, db.weight())
}

// DistanceChecked is Distance with input validation: ragged vector sets
// (vectors of differing dimension, as can arrive from user input) are
// reported as an error instead of a panic.
func (db *DB) DistanceChecked(a, b [][]float64) (float64, error) {
	return dist.MatchingDistanceChecked(a, b, dist.L2, db.weight())
}

// Neighbor is one query result.
type Neighbor struct {
	ID   uint64
	Dist float64
}

// KNN returns the k nearest stored objects to the query set. The result
// is exact and identical at any worker count and any epoch
// representation (compacted or not): base candidates come from the
// filter pipeline over-fetched past the tombstones, delta objects are
// exact-scanned, and the merged list is (dist, id)-ordered.
func (db *DB) KNN(query [][]float64, k int) []Neighbor {
	return db.knnView(db.cur.Load(), vectorset.FlatFromRows(query), k)
}

// knnView answers one k-nn against a pinned view. Single and batch
// queries share it, which is what makes KNNBatch results identical to
// sequential KNN calls at the same epoch.
func (db *DB) knnView(v *view, query vectorset.Flat, k int) []Neighbor {
	if k > len(v.ids) {
		k = len(v.ids)
	}
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, k+len(v.deltaIDs))
	for _, nb := range v.base.KNNFlat(query, k+len(v.tomb)) {
		if _, dead := v.tomb[uint64(nb.ID)]; dead {
			continue
		}
		out = append(out, Neighbor{ID: uint64(nb.ID), Dist: nb.Dist})
	}
	out = append(out, db.deltaScan(v, query, -1)...)
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Range returns all stored objects within eps of the query set.
func (db *DB) Range(query [][]float64, eps float64) []Neighbor {
	return db.rangeView(db.cur.Load(), vectorset.FlatFromRows(query), eps)
}

// rangeView answers one ε-range query against a pinned view.
func (db *DB) rangeView(v *view, query vectorset.Flat, eps float64) []Neighbor {
	out := make([]Neighbor, 0, 16)
	for _, nb := range v.base.RangeFlat(query, eps) {
		if _, dead := v.tomb[uint64(nb.ID)]; dead {
			continue
		}
		out = append(out, Neighbor{ID: uint64(nb.ID), Dist: nb.Dist})
	}
	out = append(out, db.deltaScan(v, query, eps)...)
	sortNeighbors(out)
	return out
}

// KNNBatch answers queries[i] exactly as KNN(queries[i], k) would —
// the per-query results are identical entry for entry — but pins one
// epoch view for the whole batch and fans the queries out over the
// worker pool, each worker refining with its own pooled workspace. One
// view load per batch also means the batch is atomic: every entry sees
// the same epoch even while mutators run.
func (db *DB) KNNBatch(queries [][][]float64, k int) [][]Neighbor {
	v := db.cur.Load()
	flats := flattenQueries(queries)
	out := make([][]Neighbor, len(queries))
	db.runBatch(len(queries), func(i int) {
		out[i] = db.knnView(v, flats[i], k)
	})
	return out
}

// RangeBatch answers queries[i] exactly as Range(queries[i], eps)
// would, against one pinned epoch view (see KNNBatch).
func (db *DB) RangeBatch(queries [][][]float64, eps float64) [][]Neighbor {
	v := db.cur.Load()
	flats := flattenQueries(queries)
	out := make([][]Neighbor, len(queries))
	db.runBatch(len(queries), func(i int) {
		out[i] = db.rangeView(v, flats[i], eps)
	})
	return out
}

func flattenQueries(queries [][][]float64) []vectorset.Flat {
	flats := make([]vectorset.Flat, len(queries))
	for i, q := range queries {
		flats[i] = vectorset.FlatFromRows(q)
	}
	return flats
}

// runBatch executes fn(0..n-1) on the query worker pool, contiguous
// chunks per worker.
func (db *DB) runBatch(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	workers := db.queryWorkers()
	if workers > n {
		workers = n
	}
	parallel.Run(workers, func(worker int) {
		lo, hi := parallel.Chunk(n, workers, worker)
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// deltaScan computes the exact distance from query to every delta
// object, in parallel on the configured worker pool; eps ≥ 0 filters to
// the range predicate (dist ≤ eps), eps < 0 keeps everything (k-nn).
// Results are deterministic: one slot per delta index, merged in order.
// Distances run through the flat kernel — bit-identical to the generic
// MatchingDistance with L2 ground and w_ω weights.
func (db *DB) deltaScan(v *view, query vectorset.Flat, eps float64) []Neighbor {
	n := len(v.deltaIDs)
	if n == 0 {
		return nil
	}
	dists := make([]float64, n)
	workers := db.queryWorkers()
	parallel.Run(workers, func(worker int) {
		lo, hi := parallel.Chunk(n, workers, worker)
		if lo >= hi {
			return
		}
		ws := dist.GetWorkspace()
		defer dist.PutWorkspace(ws)
		for i := lo; i < hi; i++ {
			dists[i] = ws.MatchingDistanceFlat(query, v.delta[v.deltaIDs[i]], db.omega)
		}
	})
	db.refExtra.Add(int64(n))
	out := make([]Neighbor, 0, n)
	for i, id := range v.deltaIDs {
		if eps >= 0 && dists[i] > eps {
			continue
		}
		out = append(out, Neighbor{ID: id, Dist: dists[i]})
	}
	return out
}

func sortNeighbors(out []Neighbor) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
}
