package vsdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Batch-vs-sequential oracle: KNNBatch and RangeBatch must answer every
// entry byte-identically to the corresponding single query, for every
// worker count, against a database with all three layers live (compacted
// base, delta memtable, tombstones).
func TestBatchMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			db, err := Open(Config{Dim: 4, MaxCard: 5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(1); id <= 120; id++ {
				if err := db.Insert(id, randSet(rng, 1+rng.Intn(5), 4)); err != nil {
					t.Fatal(err)
				}
			}
			db.Compact() // 1..120 into the base layer
			for id := uint64(121); id <= 150; id++ {
				if err := db.Insert(id, randSet(rng, 1+rng.Intn(5), 4)); err != nil {
					t.Fatal(err)
				}
			}
			for id := uint64(1); id <= 15; id++ { // tombstones over the base
				if err := db.Delete(id * 7); err != nil {
					t.Fatal(err)
				}
			}

			queries := make([][][]float64, 40)
			for i := range queries {
				queries[i] = randSet(rng, 1+rng.Intn(5), 4)
			}
			const k = 9
			batch := db.KNNBatch(queries, k)
			if len(batch) != len(queries) {
				t.Fatalf("KNNBatch returned %d lists for %d queries", len(batch), len(queries))
			}
			var eps float64
			for i, q := range queries {
				want := db.KNN(q, k)
				if len(want) > 0 {
					eps = want[len(want)/2].Dist
				}
				assertSameNeighbors(t, fmt.Sprintf("KNN query %d", i), batch[i], want)
			}

			rBatch := db.RangeBatch(queries, eps)
			if len(rBatch) != len(queries) {
				t.Fatalf("RangeBatch returned %d lists for %d queries", len(rBatch), len(queries))
			}
			for i, q := range queries {
				assertSameNeighbors(t, fmt.Sprintf("Range query %d", i), rBatch[i], db.Range(q, eps))
			}

			if got := db.KNNBatch(nil, k); len(got) != 0 {
				t.Fatalf("empty batch returned %d lists", len(got))
			}
		})
	}
}

func assertSameNeighbors(t *testing.T, label string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] { // exact: same id, bit-identical distance
			t.Fatalf("%s: neighbor %d = %+v, want %+v", label, j, got[j], want[j])
		}
	}
}
