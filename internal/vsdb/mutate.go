package vsdb

import (
	"fmt"

	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/vectorset"
	"github.com/voxset/voxset/internal/wal"
)

// walHandle pairs the log file with its options so Checkpoint can
// re-create it after truncation.
type walHandle struct {
	file *wal.File
	opt  WALOptions
}

// checkSet validates cardinality and dimensions against the configuration.
func (db *DB) checkSet(id uint64, set [][]float64) error {
	if len(set) == 0 {
		return fmt.Errorf("vsdb: empty vector set for id %d", id)
	}
	if len(set) > db.cfg.MaxCard {
		return fmt.Errorf("vsdb: set cardinality %d exceeds MaxCard %d", len(set), db.cfg.MaxCard)
	}
	for i, v := range set {
		if len(v) != db.cfg.Dim {
			return fmt.Errorf("vsdb: vector %d has dim %d, want %d", i, len(v), db.cfg.Dim)
		}
	}
	return nil
}

// checkFlat is checkSet for an already-flat set (the snapshot load
// path, where the decoder guarantees rectangular data).
func (db *DB) checkFlat(id uint64, set vectorset.Flat) error {
	if set.Card == 0 {
		return fmt.Errorf("vsdb: empty vector set for id %d", id)
	}
	if set.Card > db.cfg.MaxCard {
		return fmt.Errorf("vsdb: set cardinality %d exceeds MaxCard %d", set.Card, db.cfg.MaxCard)
	}
	if set.Dim != db.cfg.Dim {
		return fmt.Errorf("vsdb: vector 0 has dim %d, want %d", set.Dim, db.cfg.Dim)
	}
	return nil
}

// validateSet checks cardinality and dimensions and returns a flat copy
// of the set, detached from caller storage (one buffer the view history
// then owns exclusively).
func (db *DB) validateSet(id uint64, set [][]float64) (vectorset.Flat, error) {
	if err := db.checkSet(id, set); err != nil {
		return vectorset.Flat{}, err
	}
	return vectorset.FlatFromRows(set), nil
}

// logRecords makes recs durable before the mutation becomes visible.
// Must be called with db.mu held.
func (db *DB) logRecords(recs []wal.Record) error {
	if db.log == nil {
		return nil
	}
	if _, err := db.log.file.AppendBatch(recs); err != nil {
		return fmt.Errorf("vsdb: %w", err)
	}
	return nil
}

// Insert stores the vector set under the caller-chosen id. Inserting an
// existing id is an error wrapping ErrExists (use Delete first to
// replace). With a WAL attached the record is durable before any query
// can observe the object.
func (db *DB) Insert(id uint64, set [][]float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.cur.Load()
	if v.live(id) {
		return fmt.Errorf("vsdb: id %d %w", id, ErrExists)
	}
	cp, err := db.validateSet(id, set)
	if err != nil {
		return err
	}
	if err := db.logRecords([]wal.Record{{Op: wal.OpInsert, ID: id, Set: cp.Rows()}}); err != nil {
		return err
	}
	db.publish(v.withInsert(id, cp))
	return nil
}

// Delete removes an object; the id must be live (else the error wraps
// ErrNotFound). A base-resident object leaves a tombstone until the next
// compaction; a delta object disappears immediately.
func (db *DB) Delete(id uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.cur.Load()
	if !v.live(id) {
		return fmt.Errorf("vsdb: id %d %w", id, ErrNotFound)
	}
	if err := db.logRecords([]wal.Record{{Op: wal.OpDelete, ID: id}}); err != nil {
		return err
	}
	db.publish(v.withDelete(id))
	return nil
}

// BulkInsert stores sets[i] under ids[i] for every i, validating and
// deep-copying the sets on the Config.Workers pool (default one worker
// per CPU for this batch path). Any invalid entry — duplicate id against
// the database or within the batch, empty set, cardinality or dimension
// mismatch — fails the whole call before the database is touched; the
// first error in index order is returned. A successful BulkInsert is
// indistinguishable from sequential Inserts in input order (the epoch
// advances by len(ids)), except that the batch is folded straight into
// a compacted base rather than the delta memtable.
func (db *DB) BulkInsert(ids []uint64, sets [][][]float64) error {
	if len(ids) != len(sets) {
		return fmt.Errorf("vsdb: BulkInsert got %d ids for %d sets", len(ids), len(sets))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.cur.Load()
	seen := make(map[uint64]int, len(ids))
	for i, id := range ids {
		if v.live(id) {
			return fmt.Errorf("vsdb: id %d %w", id, ErrExists)
		}
		if j, dup := seen[id]; dup {
			return fmt.Errorf("vsdb: id %d duplicated within batch (indexes %d and %d)", id, j, i)
		}
		seen[id] = i
	}
	cps := make([]vectorset.Flat, len(sets))
	errs := make([]error, len(sets))
	w := parallel.Workers(db.cfg.Workers, parallel.Auto())
	parallel.ForEach(len(sets), w, func(i int) {
		cps[i], errs[i] = db.validateSet(ids[i], sets[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if len(ids) == 0 {
		return nil
	}
	recs := make([]wal.Record, len(ids))
	for i, id := range ids {
		recs[i] = wal.Record{Op: wal.OpInsert, ID: id, Set: cps[i].Rows()}
	}
	if err := db.logRecords(recs); err != nil {
		return err
	}
	db.cur.Store(db.rebuildView(v, ids, cps, uint64(len(ids))))
	return nil
}

// Compact folds the delta memtable and the tombstones into a fresh
// STR-bulk-loaded base index. The logical state — and therefore the
// epoch — is unchanged: every query answers identically before and
// after, so caches keyed on the epoch stay valid.
func (db *DB) Compact() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.compactLocked()
}

func (db *DB) compactLocked() {
	v := db.cur.Load()
	if v.compacted() {
		return
	}
	db.cur.Store(db.rebuildView(v, nil, nil, 0))
}

// publish installs nv and compacts if it crossed a threshold.
// Must be called with db.mu held.
func (db *DB) publish(nv *view) {
	db.cur.Store(nv)
	db.maybeCompactLocked()
}

func (db *DB) maybeCompactLocked() {
	v := db.cur.Load()
	if v.compacted() {
		return
	}
	if md := db.cfg.maxDelta(); md > 0 && len(v.delta) >= md {
		db.compactLocked()
		return
	}
	if cr := db.cfg.compactRatio(); cr > 0 && v.tombRatio() >= cr {
		db.compactLocked()
	}
}

// rebuildView builds a compacted view over v's live objects plus the
// additional (addIDs[i], addSets[i]) pairs, advancing the epoch by
// seqDelta. Extended centroids are recomputed on the worker pool and the
// X-tree is STR-bulk-loaded from them — the same build path a snapshot
// load uses. Must be called with db.mu held.
func (db *DB) rebuildView(v *view, addIDs []uint64, addSets []vectorset.Flat, seqDelta uint64) *view {
	n := len(v.ids) + len(addIDs)
	ids := make([]uint64, 0, n)
	sets := make([]vectorset.Flat, 0, n)
	for _, id := range v.ids {
		ids = append(ids, id)
		sets = append(sets, v.get(id))
	}
	for i, id := range addIDs {
		ids = append(ids, id)
		sets = append(sets, addSets[i])
	}
	cents := make([][]float64, len(sets))
	w := parallel.Workers(db.cfg.Workers, parallel.Auto())
	parallel.ForEach(len(sets), w, func(i int) {
		cents[i] = sets[i].Centroid(db.cfg.MaxCard, db.omega)
	})
	intIDs := make([]int, len(ids))
	baseSets := make(mapStore, len(ids))
	for i, id := range ids {
		intIDs[i] = int(id)
		baseSets[id] = sets[i]
	}
	// The retiring base's evaluations move into refExtra (and its sketch
	// candidates into skExtra) so the DB-wide counters survive the rebuild.
	db.refExtra.Add(v.base.Refinements())
	db.skExtra.Add(v.base.SketchCandidates())
	if !v.compacted() {
		db.compactions.Add(1)
	}
	return &view{
		seq:      v.seq + seqDelta,
		base:     filter.NewBulk(db.filterConfig(), sets, intIDs, cents),
		baseSets: baseSets,
		ids:      ids,
	}
}

// withInsert derives the view after inserting id. The ids slice is
// extended in place (append): older views never read past their own
// length, so the shared prefix is safe.
func (v *view) withInsert(id uint64, set vectorset.Flat) *view {
	delta := make(map[uint64]vectorset.Flat, len(v.delta)+1)
	for k, s := range v.delta {
		delta[k] = s
	}
	delta[id] = set
	nv := &view{
		seq:      v.seq + 1,
		base:     v.base,
		baseSets: v.baseSets,
		tomb:     v.tomb,
		delta:    delta,
		// Plain appends share the parent's backing array: history is
		// linear (single writer) and an older view never indexes past
		// its own length, so the shared prefix is immutable to it.
		deltaIDs: append(v.deltaIDs, id),
		ids:      append(v.ids, id),
	}
	return nv
}

// withDelete derives the view after deleting a live id.
func (v *view) withDelete(id uint64) *view {
	nv := &view{
		seq:      v.seq + 1,
		base:     v.base,
		baseSets: v.baseSets,
		tomb:     v.tomb,
		delta:    v.delta,
		deltaIDs: v.deltaIDs,
		ids:      without(v.ids, id),
	}
	if _, inDelta := v.delta[id]; inDelta {
		delta := make(map[uint64]vectorset.Flat, len(v.delta))
		for k, s := range v.delta {
			if k != id {
				delta[k] = s
			}
		}
		nv.delta = delta
		nv.deltaIDs = without(v.deltaIDs, id)
	} else {
		tomb := make(map[uint64]struct{}, len(v.tomb)+1)
		for k := range v.tomb {
			tomb[k] = struct{}{}
		}
		tomb[id] = struct{}{}
		nv.tomb = tomb
	}
	return nv
}

// without returns a fresh copy of s with the first occurrence of id
// removed.
func without(s []uint64, id uint64) []uint64 {
	out := make([]uint64, 0, len(s))
	for _, x := range s {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Write-ahead log (DESIGN.md §8)

// WALOptions tune an attached write-ahead log.
type WALOptions struct {
	// NoSync skips the fsync per mutation batch (wal.FileOptions.NoSync).
	NoSync bool
}

// AttachWAL opens (or creates) the write-ahead log at path and binds it
// to the database: records beyond the database's current epoch are
// replayed first, and from then on every mutation is appended — and
// synced, unless opt.NoSync — before it becomes visible to queries.
//
// The log must belong to this database: its configuration header has to
// match, and its base sequence number must not lie beyond the current
// epoch (that would mean mutations between snapshot and log are lost).
// A log whose records all precede the current epoch is stale — its
// records are already inside the snapshot the database was loaded from —
// and is truncated against the current epoch.
func (db *DB) AttachWAL(path string, opt WALOptions) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log != nil {
		return fmt.Errorf("vsdb: a WAL is already attached (%s)", db.log.file.Path())
	}
	v := db.cur.Load()
	file, recs, err := wal.OpenFile(path, wal.Config{
		Dim:     db.cfg.Dim,
		MaxCard: db.cfg.MaxCard,
		BaseSeq: v.seq,
		Omega:   db.omega,
	}, wal.FileOptions{NoSync: opt.NoSync})
	if err != nil {
		return fmt.Errorf("vsdb: %w", err)
	}
	if base := file.Config().BaseSeq; base > v.seq {
		file.Close()
		return fmt.Errorf("vsdb: WAL %s starts at sequence %d but the database is at epoch %d: mutations are missing", path, base, v.seq)
	}
	nv, err := db.replayLocked(v, recs)
	if err != nil {
		file.Close()
		return fmt.Errorf("vsdb: replaying WAL %s: %w", path, err)
	}
	if nv != v {
		db.cur.Store(nv)
	}
	if file.Seq() < nv.seq {
		// Every log record is already inside the loaded snapshot:
		// truncate so future appends continue from the current epoch.
		if err := file.Reset(nv.seq); err != nil {
			file.Close()
			return fmt.Errorf("vsdb: %w", err)
		}
	}
	db.log = &walHandle{file: file, opt: opt}
	db.maybeCompactLocked()
	return nil
}

// replayLocked applies the WAL records with sequence numbers beyond
// v.seq and returns the resulting view (v itself when nothing applies).
// Replay is strict: a record that conflicts with the state it replays
// onto (inserting a live id, deleting a dead one) means snapshot and log
// do not belong together.
func (db *DB) replayLocked(v *view, recs []wal.Record) (*view, error) {
	applied := 0
	for _, rec := range recs {
		if rec.Seq > v.seq {
			applied++
		}
	}
	if applied == 0 {
		return v, nil
	}
	// One mutable scratch state, O(total) instead of a view copy per
	// record; the result is published as a single new view.
	delta := make(map[uint64]vectorset.Flat, len(v.delta)+applied)
	for k, s := range v.delta {
		delta[k] = s
	}
	deltaIDs := append([]uint64(nil), v.deltaIDs...)
	tomb := make(map[uint64]struct{}, len(v.tomb))
	for k := range v.tomb {
		tomb[k] = struct{}{}
	}
	ids := append([]uint64(nil), v.ids...)
	seq := v.seq
	live := func(id uint64) bool {
		if _, ok := delta[id]; ok {
			return true
		}
		if _, dead := tomb[id]; dead {
			return false
		}
		return v.baseSets.baseHas(id)
	}
	for _, rec := range recs {
		if rec.Seq <= v.seq {
			continue
		}
		switch rec.Op {
		case wal.OpInsert:
			if live(rec.ID) {
				return nil, fmt.Errorf("record %d inserts id %d which is already live", rec.Seq, rec.ID)
			}
			if err := db.checkSet(rec.ID, rec.Set); err != nil {
				return nil, err
			}
			delta[rec.ID] = vectorset.FlatFromRows(rec.Set)
			deltaIDs = append(deltaIDs, rec.ID)
			ids = append(ids, rec.ID)
		case wal.OpDelete:
			if !live(rec.ID) {
				return nil, fmt.Errorf("record %d deletes id %d which is not live", rec.Seq, rec.ID)
			}
			if _, inDelta := delta[rec.ID]; inDelta {
				delete(delta, rec.ID)
				deltaIDs = without(deltaIDs, rec.ID)
			} else {
				tomb[rec.ID] = struct{}{}
			}
			ids = without(ids, rec.ID)
		default:
			return nil, fmt.Errorf("record %d has unknown op %v", rec.Seq, rec.Op)
		}
		seq = rec.Seq
	}
	return &view{
		seq:      seq,
		base:     v.base,
		baseSets: v.baseSets,
		tomb:     tomb,
		delta:    delta,
		deltaIDs: deltaIDs,
		ids:      ids,
	}, nil
}

// WALRecords returns the number of records currently in the attached
// log (0 when none is attached).
func (db *DB) WALRecords() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return 0
	}
	return db.log.file.Records()
}

// Checkpoint writes a snapshot of the current state to path (atomically,
// via a sibling temporary file) and truncates the attached WAL against
// it: the snapshot carries the epoch, so a crash between the two steps
// only means the next open replays records the snapshot already holds —
// and skips them by sequence number.
func (db *DB) Checkpoint(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.cur.Load()
	if err := db.saveViewFile(v, path); err != nil {
		return err
	}
	if db.log != nil {
		if err := db.log.file.Reset(v.seq); err != nil {
			return fmt.Errorf("vsdb: %w", err)
		}
	}
	return nil
}

// Close detaches and closes the WAL (syncing it first, unless NoSync)
// and unmaps the backing snapshot of an OpenFile database. A
// heap-resident database remains queryable after Close (further
// mutations are simply not logged); an mmap-backed one must not be
// queried afterwards — its views alias the released mapping.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var err error
	if db.log != nil {
		err = db.log.file.Close()
		db.log = nil
	}
	if db.reader != nil {
		if cerr := db.reader.Close(); err == nil {
			err = cerr
		}
		db.reader = nil
	}
	return err
}
