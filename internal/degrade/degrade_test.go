package degrade

import (
	"testing"

	"github.com/voxset/voxset/internal/geom"
	"github.com/voxset/voxset/internal/mesh"
	"github.com/voxset/voxset/internal/voxel"
)

// testGrid voxelizes a sphere mesh — a part with real volume and a
// real surface — at resolution 20.
func testGrid(t *testing.T) *voxel.Grid {
	t.Helper()
	m := mesh.NewSphere(geom.Vec3{}, 1.0, 24, 16)
	g := voxel.VoxelizeMesh(m, m.Bounds(), 20)
	if g.Empty() {
		t.Fatal("test sphere voxelized empty")
	}
	return g
}

func allParams(seed int64, sev float64) []Params {
	out := make([]Params, 0, len(Kinds))
	for _, k := range Kinds {
		out = append(out, Params{Kind: k, Severity: sev, Seed: seed})
	}
	return out
}

// TestGridDeterminism: same grid + same Params → bit-identical output,
// and the input is never modified.
func TestGridDeterminism(t *testing.T) {
	g := testGrid(t)
	before := g.Clone()
	for _, p := range allParams(11, 0.3) {
		a := Grid(g, p)
		b := Grid(g, p)
		if !a.Equal(b) {
			t.Fatalf("%s: two runs with identical Params differ", p.Kind)
		}
		if !g.Equal(before) {
			t.Fatalf("%s: input grid was modified", p.Kind)
		}
	}
}

// TestGridSeedSensitivity: the seed matters for the randomized kinds
// (rescan is deliberately seed-free: a coarser scanner is not random).
func TestGridSeedSensitivity(t *testing.T) {
	g := testGrid(t)
	for _, k := range []Kind{Crop, Noise, Dropout} {
		a := Grid(g, Params{Kind: k, Severity: 0.4, Seed: 1})
		b := Grid(g, Params{Kind: k, Severity: 0.4, Seed: 2})
		if a.Equal(b) {
			t.Fatalf("%s: seeds 1 and 2 produced identical damage", k)
		}
	}
}

// TestGridSeverityZeroIsIdentity: severity 0 is a plain copy for every
// kind, so sweeps can include an undamaged control row.
func TestGridSeverityZeroIsIdentity(t *testing.T) {
	g := testGrid(t)
	for _, p := range allParams(5, 0) {
		if out := Grid(g, p); !out.Equal(g) {
			t.Fatalf("%s severity 0: output differs from input", p.Kind)
		}
	}
}

// TestGridDamageShape: every kind changes the grid at real severity,
// crop removes close to the requested fraction, and the placement
// metadata survives.
func TestGridDamageShape(t *testing.T) {
	g := testGrid(t)
	n := g.Count()
	for _, p := range allParams(23, 0.25) {
		out := Grid(g, p)
		if out.Equal(g) {
			t.Fatalf("%s severity 0.25: no damage applied", p.Kind)
		}
		if out.Nx != g.Nx || out.Ny != g.Ny || out.Nz != g.Nz ||
			out.Origin != g.Origin || out.CellSize != g.CellSize {
			t.Fatalf("%s: dimensions or placement changed", p.Kind)
		}
	}
	cropped := Grid(g, Params{Kind: Crop, Severity: 0.25, Seed: 23})
	removed := float64(n-cropped.Count()) / float64(n)
	if removed < 0.2 || removed > 0.3 {
		t.Fatalf("crop severity 0.25 removed %.3f of the volume, want ≈0.25", removed)
	}
}

// TestMeshRoundTrip: degrade.Mesh returns a watertight mesh that
// voxelizes non-empty, and the round trip is deterministic.
func TestMeshRoundTrip(t *testing.T) {
	m := mesh.NewSphere(geom.Vec3{}, 1.0, 24, 16)
	for _, k := range Kinds {
		p := Params{Kind: k, Severity: 0.2, Seed: 31}
		dm, err := Mesh(m, 20, p)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(dm.Triangles) == 0 {
			t.Fatalf("%s: damaged mesh has no triangles", k)
		}
		g := voxel.VoxelizeMesh(dm, dm.Bounds(), 20)
		if g.Empty() {
			t.Fatalf("%s: damaged mesh voxelizes empty", k)
		}
		dm2, err := Mesh(m, 20, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(dm.Triangles) != len(dm2.Triangles) {
			t.Fatalf("%s: two runs produced %d vs %d triangles", k, len(dm.Triangles), len(dm2.Triangles))
		}
	}
}

// TestMeshErrors: empty meshes and total destruction are errors, not
// panics or empty outputs.
func TestMeshErrors(t *testing.T) {
	if _, err := Mesh(&mesh.Mesh{Name: "empty"}, 20, Params{Kind: Crop, Severity: 0.5}); err == nil {
		t.Fatal("empty mesh accepted")
	}
	m := mesh.NewSphere(geom.Vec3{}, 1.0, 24, 16)
	if _, err := Mesh(m, 20, Params{Kind: Crop, Severity: 1.0, Seed: 3}); err == nil {
		t.Fatal("severity 1 crop (removes everything) returned a mesh")
	}
}
