// Package degrade produces deterministic, seeded damaged variants of
// voxelized parts — the synthetic "scan" side of scan-to-CAD retrieval.
// A real scan of a physical part differs from its CAD model in
// characteristic ways: the scanner saw only part of the object (crop),
// the surface is noisy (noise), patches are missing where the scanner
// had no line of sight (dropout), and the reconstruction is coarser
// than the model (rescan). Each Kind models one of these.
//
// Determinism contract (mirrors cadgen's): the output is a pure
// function of the input grid and Params — same grid, same Params,
// bit-identical output, independent of GOMAXPROCS or call history. All
// randomness flows from a single rand.Rand seeded with Params.Seed and
// drawn in a fixed order; grid iteration is index-ordered. The input
// grid is never modified.
//
// Severity is a dial in [0, 1]: 0 is the identity for every kind
// (callers can sweep severity from zero without special-casing), 1 is
// the heaviest damage the kind models. Severities outside the range are
// clamped.
package degrade

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/voxset/voxset/internal/mesh"
	"github.com/voxset/voxset/internal/voxel"
)

// Kind enumerates the damage models.
type Kind int

const (
	// Crop removes the severity-fraction of voxels on one side of a
	// seeded random halfspace — the scanner saw the part from one side.
	Crop Kind = iota
	// Noise flips surface cells: each boundary voxel is deleted, and
	// each empty cell adjacent to the boundary is filled, with
	// probability severity — measurement noise on the scanned surface.
	Noise
	// Dropout clears random spherical patches centered on surface
	// voxels — occlusions and unscannable regions.
	Dropout
	// Rescan resamples the part through a coarser intermediate grid
	// (majority occupancy per block), erasing features smaller than
	// the simulated scanner resolution.
	Rescan
)

// Kinds lists every damage model, in declaration order, for sweeps.
var Kinds = []Kind{Crop, Noise, Dropout, Rescan}

// String returns the kind's stable lowercase name (used in benchmark
// JSON and test names).
func (k Kind) String() string {
	switch k {
	case Crop:
		return "crop"
	case Noise:
		return "noise"
	case Dropout:
		return "dropout"
	case Rescan:
		return "rescan"
	}
	return fmt.Sprintf("degrade.Kind(%d)", int(k))
}

// Params selects a damage model, its severity in [0, 1], and the seed
// all randomness derives from.
type Params struct {
	Kind     Kind
	Severity float64
	Seed     int64
}

func (p Params) severity() float64 {
	return math.Min(1, math.Max(0, p.Severity))
}

// Grid returns a damaged copy of g under p. The result has the same
// dimensions and world placement as g; only occupancy changes. An empty
// input, or severity 0, comes back as a plain copy.
func Grid(g *voxel.Grid, p Params) *voxel.Grid {
	out := g.Clone()
	sev := p.severity()
	if g.Empty() || sev == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(p.Seed))
	switch p.Kind {
	case Crop:
		crop(out, rng, sev)
	case Noise:
		noise(out, rng, sev)
	case Dropout:
		dropout(out, rng, sev)
	case Rescan:
		rescan(out, sev)
	default:
		panic(fmt.Sprintf("degrade: unknown kind %d", int(p.Kind)))
	}
	return out
}

// Mesh returns a damaged, watertight copy of m: the mesh is voxelized
// at resolution r (normalized placement, bit-identical at any worker
// count), the grid is damaged under p, and the boundary surface of the
// damaged grid is re-extracted with voxel.ToMesh. The round trip is the
// point — the output is a closed triangle mesh any STL consumer (the
// /query/mesh endpoint included) can ingest as if it came from a
// scanner. Returns an error if the input has no triangles or the damage
// removed every voxel.
func Mesh(m *mesh.Mesh, r int, p Params) (*mesh.Mesh, error) {
	if m == nil || len(m.Triangles) == 0 {
		return nil, fmt.Errorf("degrade: mesh %q has no triangles", meshName(m))
	}
	g := voxel.VoxelizeMesh(m, m.Bounds(), r)
	dg := Grid(g, p)
	if dg.Empty() {
		return nil, fmt.Errorf("degrade: %s severity %.2f removed every voxel of %q",
			p.Kind, p.severity(), m.Name)
	}
	return voxel.ToMesh(dg, fmt.Sprintf("%s-%s", m.Name, p.Kind)), nil
}

func meshName(m *mesh.Mesh) string {
	if m == nil {
		return "<nil>"
	}
	return m.Name
}

// crop clears the severity-fraction of occupied voxels farthest along a
// seeded random direction. The cut is by population quantile, not
// geometric depth, so severity 0.1 removes ~10% of the part's volume
// regardless of its shape.
func crop(g *voxel.Grid, rng *rand.Rand, sev float64) {
	// Random unit direction (three draws, fixed order).
	dx, dy, dz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	n := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if n == 0 {
		dx, dy, dz, n = 1, 0, 0, 1
	}
	dx, dy, dz = dx/n, dy/n, dz/n
	type cell struct {
		proj    float64
		x, y, z int
	}
	cells := make([]cell, 0, g.Count())
	g.ForEach(func(x, y, z int) {
		cells = append(cells, cell{float64(x)*dx + float64(y)*dy + float64(z)*dz, x, y, z})
	})
	// Stable order: by projection, ties by index order (ForEach already
	// appends in index order, and the sort is stable).
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].proj < cells[j].proj })
	cut := len(cells) - int(math.Round(sev*float64(len(cells))))
	for _, c := range cells[cut:] {
		g.Set(c.x, c.y, c.z, false)
	}
}

// noise perturbs the boundary: every surface voxel is cleared with
// probability sev, and every empty 6-neighbor of the original surface
// is filled with probability sev. Both passes draw against the
// pre-damage surface, in index order, so the draws are reproducible.
func noise(g *voxel.Grid, rng *rand.Rand, sev float64) {
	surf := voxel.Surface(g)
	type idx struct{ x, y, z int }
	var toClear, toFill []idx
	neighbors := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	surf.ForEach(func(x, y, z int) {
		if rng.Float64() < sev {
			toClear = append(toClear, idx{x, y, z})
		}
		for _, d := range neighbors {
			nx, ny, nz := x+d[0], y+d[1], z+d[2]
			if g.InBounds(nx, ny, nz) && !g.Get(nx, ny, nz) && rng.Float64() < sev/6 {
				toFill = append(toFill, idx{nx, ny, nz})
			}
		}
	})
	for _, c := range toClear {
		g.Set(c.x, c.y, c.z, false)
	}
	for _, c := range toFill {
		g.Set(c.x, c.y, c.z, true)
	}
}

// dropout clears spherical patches centered on randomly chosen surface
// voxels. Patch count and radius both grow with severity.
func dropout(g *voxel.Grid, rng *rand.Rand, sev float64) {
	surf := voxel.Surface(g)
	type idx struct{ x, y, z int }
	var cells []idx
	surf.ForEach(func(x, y, z int) { cells = append(cells, idx{x, y, z}) })
	if len(cells) == 0 {
		return
	}
	maxDim := g.Nx
	if g.Ny > maxDim {
		maxDim = g.Ny
	}
	if g.Nz > maxDim {
		maxDim = g.Nz
	}
	patches := 1 + int(sev*6)
	radius := 1 + int(sev*0.25*float64(maxDim))
	for p := 0; p < patches; p++ {
		c := cells[rng.Intn(len(cells))]
		for z := c.z - radius; z <= c.z+radius; z++ {
			for y := c.y - radius; y <= c.y+radius; y++ {
				for x := c.x - radius; x <= c.x+radius; x++ {
					if !g.InBounds(x, y, z) || !g.Get(x, y, z) {
						continue
					}
					ddx, ddy, ddz := x-c.x, y-c.y, z-c.z
					if ddx*ddx+ddy*ddy+ddz*ddz <= radius*radius {
						g.Set(x, y, z, false)
					}
				}
			}
		}
	}
}

// rescan resamples through a coarser grid: cells are grouped into
// f³ blocks (f = 2 for mild severities up to 4 for severity 1), a block
// is occupied iff at least half of its in-bounds cells are, and the
// blocks are expanded back to the original resolution. Deterministic
// with no random draws — the seed only matters to the other kinds.
func rescan(g *voxel.Grid, sev float64) {
	f := 2 + int(math.Round(sev*2))
	occ := make(map[[3]int][2]int) // block → (occupied, total)
	g.ForEach(func(x, y, z int) {
		b := [3]int{x / f, y / f, z / f}
		c := occ[b]
		c[0]++
		occ[b] = c
	})
	// Count totals per block (in-bounds cells only, so boundary blocks
	// are not penalized for hanging off the edge).
	for b, c := range occ {
		total := 0
		for z := b[2] * f; z < (b[2]+1)*f && z < g.Nz; z++ {
			for y := b[1] * f; y < (b[1]+1)*f && y < g.Ny; y++ {
				for x := b[0] * f; x < (b[0]+1)*f && x < g.Nx; x++ {
					total++
				}
			}
		}
		c[1] = total
		occ[b] = c
	}
	g.Clear()
	for b, c := range occ {
		if 2*c[0] < c[1] {
			continue
		}
		for z := b[2] * f; z < (b[2]+1)*f && z < g.Nz; z++ {
			for y := b[1] * f; y < (b[1]+1)*f && y < g.Ny; y++ {
				for x := b[0] * f; x < (b[0]+1)*f && x < g.Nx; x++ {
					g.Set(x, y, z, true)
				}
			}
		}
	}
}
