module github.com/voxset/voxset

go 1.22
