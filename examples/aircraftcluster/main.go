// Catalog organization by clustering: the paper's second evaluation
// scenario. A supplier's catalog of aircraft fasteners is clustered with
// OPTICS under the vector set model; the reachability plot reveals the
// part families, and an ε-cut turns them into catalog sections whose
// quality is scored against the true families.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/voxset/voxset"
)

func main() {
	log.SetFlags(0)

	cfg := voxset.DefaultConfig()
	db := voxset.MustOpen(cfg)
	parts := voxset.AircraftParts(3, 400) // subset of the 5000-part catalog
	fmt.Printf("extracting %d aircraft parts…\n", len(parts))
	db.AddParts(parts)

	fmt.Println("clustering with OPTICS (vector set model, MinPts = 5)…")
	ordering := db.Cluster(voxset.ModelVectorSet, voxset.InvRotoReflection, 5)

	fmt.Println("\nreachability plot (valleys = part families):")
	fmt.Println(voxset.RenderReachability(ordering, 100, 14))

	// Cut the plot at a fraction of the maximum reachability and report
	// the catalog sections found.
	maxFinite := 0.0
	for _, v := range ordering.Reach {
		if !math.IsInf(v, 1) && v > maxFinite {
			maxFinite = v
		}
	}
	truth := voxset.PartLabels(parts)
	for _, frac := range []float64{0.25, 0.5} {
		labels := voxset.ClusterLabels(ordering, maxFinite*frac)
		sections := map[int]map[string]int{}
		for i, l := range labels {
			if l == 0 {
				continue
			}
			if sections[l] == nil {
				sections[l] = map[string]int{}
			}
			sections[l][parts[i].Class]++
		}
		fmt.Printf("\nε-cut at %.0f%% of max reachability → %d catalog sections "+
			"(purity %.2f):\n", 100*frac, len(sections), voxset.ClusterPurity(labels, truth))
		for c := 1; c <= len(sections); c++ {
			comp, ok := sections[c]
			if !ok {
				continue
			}
			fmt.Printf("  section %2d: %v\n", c, comp)
		}
	}
}
