// Partial similarity: paper §4.1 points out that the vector set
// representation can "compare the closest i < k vectors of a set" —
// finding parts that share sub-structure even when they differ globally.
// This example builds composite parts that share a common sub-assembly
// and shows that the partial matching score detects the shared structure
// where the full minimal matching distance does not.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/voxset/voxset"
	"github.com/voxset/voxset/internal/cadgen"
	"github.com/voxset/voxset/internal/csg"
	"github.com/voxset/voxset/internal/geom"
)

func main() {
	log.SetFlags(0)

	db := voxset.MustOpen(voxset.DefaultConfig())
	rng := rand.New(rand.NewSource(9))

	// A common "mounting plate" sub-assembly shared by several composite
	// parts whose superstructures differ completely but span the same
	// bounding box, so translation/scale normalization maps the shared
	// plate to identical covers.
	plate := csg.NewBox(geom.V(0, 0, 0), geom.V(8, 5, 1))

	variants := []voxset.Part{
		{Name: "plate-with-tower", Class: "shared", Solid: csg.Union(plate,
			csg.NewBox(geom.V(1, 1, 1), geom.V(3, 3, 7)))},
		{Name: "plate-with-fin", Class: "shared", Solid: csg.Union(plate,
			csg.NewBox(geom.V(0, 2, 1), geom.V(8, 3, 7)))},
		{Name: "plate-with-posts", Class: "shared", Solid: csg.Union(plate,
			csg.NewCylinder(geom.V(2, 2.5, 4), 2, 0.8, 6),
			csg.NewCylinder(geom.V(6, 2.5, 4), 2, 0.8, 6))},
	}
	// Unrelated parts with no shared sub-assembly.
	others := []voxset.Part{
		{Name: "tire", Class: "other", Solid: cadgen.Tire(rng)},
		{Name: "nut", Class: "other", Solid: cadgen.Nut(rng)},
		{Name: "wing", Class: "other", Solid: cadgen.Wing(rng)},
		{Name: "seat", Class: "other", Solid: cadgen.SeatEnvelope(rng)},
	}
	db.AddParts(append(variants, others...))

	query := db.Object(0) // plate-with-tower
	fmt.Printf("query: %s (shares the mounting plate with two other parts)\n\n", query.Name)

	type row struct {
		name          string
		class         string
		full, partial float64
	}
	var rows []row
	for id := 1; id < db.Len(); id++ {
		o := db.Object(id)
		rows = append(rows, row{
			name:    o.Name,
			class:   o.Class,
			full:    db.Engine().Distance(voxset.ModelVectorSet, voxset.InvNone, query, o),
			partial: voxset.PartialDistance(query, o, 1), // the single best cover pair
		})
	}

	fmt.Println("ranking by FULL minimal matching distance:")
	sort.Slice(rows, func(a, b int) bool { return rows[a].full < rows[b].full })
	for i, r := range rows {
		fmt.Printf("  %d. %-18s full %7.3f   partial(1) %7.3f\n", i+1, r.name, r.full, r.partial)
	}

	fmt.Println("\nranking by PARTIAL matching (best single cover pair):")
	sort.Slice(rows, func(a, b int) bool { return rows[a].partial < rows[b].partial })
	sharedOnTop := true
	for i, r := range rows {
		fmt.Printf("  %d. %-18s partial(1) %7.3f   full %7.3f\n", i+1, r.name, r.partial, r.full)
		if i < 2 && r.class != "shared" {
			sharedOnTop = false
		}
	}
	if sharedOnTop {
		fmt.Println("\nThe parts sharing the mounting plate rank first under the " +
			"partial score even where their full distances are dominated by the " +
			"differing superstructures.")
	} else {
		fmt.Println("\nNote: ranking differs from the expected shared-substructure " +
			"ordering on this build — inspect the cover extractions above.")
	}
}
