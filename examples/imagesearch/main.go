// Beyond CAD: the paper's conclusion announces "a more general system for
// managing vector-set-represented objects" targeting applications such as
// image retrieval. This example uses the generic vector set database to
// search synthetic images represented as sets of color-region signatures
// — each region a 6-d vector (x, y, relative size, r, g, b) — under the
// minimal matching distance. Regions of two images are matched freely,
// exactly like covers of two CAD parts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/voxset/voxset/internal/vsdb"
)

// scene is a parametric image family: a set of color regions with jitter.
type scene struct {
	name    string
	regions [][6]float64 // x, y, size, r, g, b in [0,1]
}

var scenes = []scene{
	{"sunset", [][6]float64{
		{0.5, 0.2, 0.4, 0.95, 0.55, 0.15}, // orange sky
		{0.5, 0.45, 0.2, 0.99, 0.85, 0.4}, // sun band
		{0.5, 0.8, 0.4, 0.15, 0.1, 0.25},  // dark sea
	}},
	{"forest", [][6]float64{
		{0.5, 0.3, 0.5, 0.1, 0.45, 0.15}, // canopy
		{0.5, 0.75, 0.3, 0.3, 0.2, 0.1},  // trunks/ground
		{0.2, 0.1, 0.1, 0.6, 0.8, 0.95},  // sky gap
	}},
	{"portrait", [][6]float64{
		{0.5, 0.4, 0.25, 0.9, 0.75, 0.65}, // face
		{0.5, 0.8, 0.3, 0.3, 0.3, 0.5},    // clothing
		{0.5, 0.15, 0.35, 0.7, 0.7, 0.75}, // backdrop
		{0.5, 0.32, 0.05, 0.4, 0.25, 0.2}, // hair
	}},
	{"beach", [][6]float64{
		{0.5, 0.25, 0.4, 0.5, 0.75, 0.95}, // sky
		{0.5, 0.55, 0.25, 0.2, 0.55, 0.8}, // sea
		{0.5, 0.85, 0.3, 0.93, 0.87, 0.7}, // sand
	}},
}

// render jitters a scene into one concrete image signature. Region count
// varies: some images gain an extra incidental region — the unmatched-
// element case the weight function handles.
func render(s scene, rng *rand.Rand) [][]float64 {
	var set [][]float64
	for _, r := range s.regions {
		v := make([]float64, 6)
		for i, x := range r {
			v[i] = clamp01(x + rng.NormFloat64()*0.04)
		}
		set = append(set, v)
	}
	if rng.Float64() < 0.3 { // incidental object (bird, boat, …)
		set = append(set, []float64{
			rng.Float64(), rng.Float64(), 0.05,
			rng.Float64(), rng.Float64(), rng.Float64(),
		})
	}
	return set
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	db, err := vsdb.Open(vsdb.Config{Dim: 6, MaxCard: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Index 200 images, 50 per scene family.
	labels := map[uint64]string{}
	id := uint64(0)
	for _, s := range scenes {
		for i := 0; i < 50; i++ {
			if err := db.Insert(id, render(s, rng)); err != nil {
				log.Fatal(err)
			}
			labels[id] = s.name
			id++
		}
	}
	fmt.Printf("indexed %d images in %d scene families\n\n", db.Len(), len(scenes))

	// Query with fresh renders of each scene.
	correctAt5 := 0
	for _, s := range scenes {
		q := render(s, rng)
		res := db.KNN(q, 5)
		fmt.Printf("query: new %-9s image → nearest: ", s.name)
		hits := 0
		for _, nb := range res {
			fmt.Printf("%s(%.3f) ", labels[nb.ID], nb.Dist)
			if labels[nb.ID] == s.name {
				hits++
			}
		}
		correctAt5 += hits
		fmt.Printf("→ %d/5 same scene\n", hits)
	}
	fmt.Printf("\nprecision@5 over all queries: %.0f%%\n",
		100*float64(correctAt5)/float64(5*len(scenes)))

	// Deletion keeps queries exact.
	for d := uint64(0); d < 25; d++ {
		if err := db.Delete(d); err != nil {
			log.Fatal(err)
		}
	}
	res := db.KNN(render(scenes[0], rng), 3)
	fmt.Printf("after deleting half the sunsets, top-3 for a sunset query: ")
	for _, nb := range res {
		fmt.Printf("%s ", labels[nb.ID])
	}
	fmt.Println()
}
