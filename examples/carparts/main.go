// Part-reuse search: the motivating CAD scenario of the paper's
// introduction. An engineer designs a new bracket; before manufacturing
// it, the company searches its part library for existing parts that could
// be reused. The example compares what the four similarity models return
// for the same query and shows how reflection invariance finds mirrored
// parts (left vs right door).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/voxset/voxset"
	"github.com/voxset/voxset/internal/cadgen"
)

func main() {
	log.SetFlags(0)

	db := voxset.MustOpen(voxset.DefaultConfig())
	library := voxset.CarParts(7)
	db.AddParts(library)
	fmt.Printf("part library: %d parts\n", db.Len())

	// A brand-new bracket design, not in the library.
	rng := rand.New(rand.NewSource(12345))
	newPart := voxset.Part{
		Name:  "new-bracket-design",
		Class: "bracket",
		Solid: cadgen.MiscBracket(rng),
	}
	query := db.Extract(newPart)

	// Compare the four similarity models on the same query.
	models := []voxset.Model{
		voxset.ModelVolume,
		voxset.ModelSolidAngle,
		voxset.ModelCoverSeq,
		voxset.ModelVectorSet,
	}
	for _, m := range models {
		res := db.KNN(query, 5, voxset.Query{Model: m, Invariance: voxset.InvRotoReflection})
		hits := 0
		fmt.Printf("\n%s model — top 5 candidates for reuse:\n", m)
		for rank, nb := range res {
			obj := db.Object(nb.ID)
			if obj.Class == "bracket" {
				hits++
			}
			fmt.Printf("  %d. %-16s class %-12s dist %.3f\n", rank+1, obj.Name, obj.Class, nb.Dist)
		}
		fmt.Printf("  → %d/5 results are brackets\n", hits)
	}

	// Reflection invariance: the right-hand version of a door should match
	// the left-hand version only when reflections are allowed (§3.2: "the
	// right and left front door of a car should be recognized as similar
	// as far as design is concerned").
	var door *voxset.Object
	for _, o := range db.Objects() {
		if o.Class == "door" {
			door = o
			break
		}
	}
	fmt.Printf("\nreflection study on %s:\n", door.Name)
	for _, inv := range []struct {
		name string
		inv  voxset.Invariance
	}{
		{"rotations only (production view)", voxset.InvRotation90},
		{"rotations + reflections (design view)", voxset.InvRotoReflection},
	} {
		res := db.KNN(door, 6, voxset.Query{Model: voxset.ModelVectorSet, Invariance: inv.inv})
		doors := 0
		for _, nb := range res {
			if db.Object(nb.ID).Class == "door" {
				doors++
			}
		}
		fmt.Printf("  %-38s → %d/6 nearest parts are doors (mean dist %.2f)\n",
			inv.name, doors, meanDist(res))
	}
}

func meanDist(res []voxset.Neighbor) float64 {
	sum := 0.0
	for _, nb := range res {
		sum += nb.Dist
	}
	return sum / float64(len(res))
}
