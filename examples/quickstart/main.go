// Quickstart: build a similarity-search database over the synthetic Car
// dataset, run a 10-nn query under the vector set model with full
// 90°-rotation + reflection invariance, and print the result with its
// simulated I/O cost.
package main

import (
	"fmt"
	"log"

	"github.com/voxset/voxset"
)

func main() {
	log.SetFlags(0)

	// 1. Open a database with the paper's parameters (r = 15 for covers,
	//    k = 7 covers per object).
	db := voxset.MustOpen(voxset.DefaultConfig())

	// 2. Generate and index the ≈200-part Car dataset. Parts are
	//    voxelized translation/scale-normalized and all four feature
	//    representations are extracted, in parallel.
	parts := voxset.CarParts(42)
	db.AddParts(parts)
	fmt.Println(db)

	// 3. Pick a query object — a tire — and search for the 10 most
	//    similar parts under the minimal matching distance.
	query := db.Object(0)
	fmt.Printf("\nquery: %s (class %s)\n\n", query.Name, query.Class)
	results := db.KNN(query, 10, voxset.Query{
		Model:      voxset.ModelVectorSet,
		Invariance: voxset.InvRotoReflection,
	})

	for rank, nb := range results {
		obj := db.Object(nb.ID)
		match := " "
		if obj.Class == query.Class {
			match = "*"
		}
		fmt.Printf("%2d. %s %-16s class %-12s distance %.3f\n",
			rank+1, match, obj.Name, obj.Class, nb.Dist)
	}

	// 4. Inspect the simulated I/O of the query (paper cost model:
	//    8 ms/page, 200 ns/byte).
	io := db.LastIO()
	fmt.Printf("\nsimulated I/O: %d pages, %d bytes (%v); CPU: %v\n",
		io.PageAccesses, io.BytesRead, io.IOTime, io.CPUTime)
}
