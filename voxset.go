// Package voxset is a similarity-search library for voxelized CAD
// objects, reproducing Kriegel et al., "Using Sets of Feature Vectors for
// Similarity Search on Voxelized CAD Objects" (SIGMOD 2003).
//
// A CAD part is voxelized translation- and scale-normalized, then
// represented under four similarity models:
//
//   - volume model — p³-d shape histogram of voxel counts;
//   - solid-angle model — p³-d histogram of surface convexity;
//   - cover sequence model — 6k-d vector of k greedy rectangular covers;
//   - vector set model (the paper's contribution) — the same covers as a
//     *set* of 6-d vectors compared with the minimal matching distance
//     (a metric, computed in O(k³) by the Kuhn-Munkres algorithm).
//
// Similarity queries on vector sets are accelerated by the extended
// centroid filter: k·‖C(X)−C(q)‖₂ lower-bounds the matching distance, so
// a 6-d X-tree over centroids prunes candidates before exact refinement
// (optimal multi-step k-nn).
//
// Quick start:
//
//	db, _ := voxset.Open(voxset.DefaultConfig())
//	db.AddParts(voxset.CarParts(42))
//	res := db.KNN(db.Object(0), 10, voxset.Query{Model: voxset.ModelVectorSet})
package voxset

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/voxset/voxset/internal/cadgen"
	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index"
	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/index/mtree"
	"github.com/voxset/voxset/internal/index/scan"
	"github.com/voxset/voxset/internal/index/xtree"
	"github.com/voxset/voxset/internal/mesh"
	"github.com/voxset/voxset/internal/normalize"
	"github.com/voxset/voxset/internal/optics"
	"github.com/voxset/voxset/internal/storage"
	"github.com/voxset/voxset/internal/voxel"
)

// Re-exported pipeline types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Config holds extraction parameters (voxel resolutions, histogram
	// partitions, cover budget k).
	Config = core.Config
	// Object is a fully extracted database object with all four feature
	// representations.
	Object = core.Object
	// Model selects a similarity model.
	Model = core.Model
	// Invariance selects the transformation set of Definition 2.
	Invariance = core.Invariance
	// Part is a synthetic CAD part (a labeled CSG solid).
	Part = cadgen.Part
	// Neighbor is a single query result.
	Neighbor = index.Neighbor
	// ClusterResult is an OPTICS cluster ordering with reachabilities.
	ClusterResult = optics.Result
	// ClusterNode is one node of a hierarchical cluster tree extracted
	// from a reachability plot.
	ClusterNode = optics.ClusterNode
)

// Similarity models (see Model).
const (
	ModelVolume       = core.ModelVolume
	ModelSolidAngle   = core.ModelSolidAngle
	ModelCoverSeq     = core.ModelCoverSeq
	ModelCoverSeqPerm = core.ModelCoverSeqPerm
	ModelVectorSet    = core.ModelVectorSet
)

// Invariance settings (see Invariance).
const (
	InvNone           = core.InvNone
	InvRotation90     = core.InvRotation90
	InvRotoReflection = core.InvRotoReflection
)

// DefaultConfig mirrors the paper's parameters: histogram resolution 30,
// cover resolution 15, k = 7 covers.
func DefaultConfig() Config { return core.DefaultConfig() }

// ParseModel parses a model name ("volume", "solidangle", "coverseq",
// "permseq", "vectorset").
func ParseModel(s string) (Model, error) { return core.ParseModel(s) }

// CarParts generates the synthetic Car Dataset (≈200 parts in the
// families the paper describes: tires, doors, fenders, engine blocks,
// seat envelopes, brackets).
func CarParts(seed int64) []Part { return cadgen.CarDataset(seed) }

// AircraftParts generates n parts of the synthetic Aircraft Dataset
// (fastener-heavy mix with a few large wings; the paper uses n = 5000).
func AircraftParts(seed int64, n int) []Part { return cadgen.AircraftDataset(seed, n) }

// PartLabels returns the 1-based class id of every part.
func PartLabels(parts []Part) []int { return cadgen.Labels(parts) }

// Query configures a similarity query.
type Query struct {
	// Model selects the similarity model (default ModelVectorSet).
	Model Model
	// Invariance selects the transformation set (default InvNone).
	// Invariant queries bypass the accelerated paths and evaluate
	// Definition 2 exhaustively.
	Invariance Invariance
	// Access selects the physical access path for vector set queries.
	Access Access
	// ScaleSensitive deactivates scaling invariance (§3.2): cover features
	// are compared in world units via the stored scale factors, so
	// identically shaped parts of different sizes rank as dissimilar.
	// Supported for the cover-based models only; forces the exhaustive
	// evaluation path.
	ScaleSensitive bool
}

// Access selects an access path for queries.
type Access int

const (
	// AccessAuto uses the filter pipeline for the vector set model, the
	// X-tree for the one-vector cover model, and a scan otherwise.
	AccessAuto Access = iota
	// AccessFilter forces the extended-centroid filter pipeline
	// (vector set model only).
	AccessFilter
	// AccessScan forces a sequential scan with exact distances.
	AccessScan
	// AccessMTree forces the M-tree metric index (vector set model only) —
	// the "simplest approach" the paper names in §4.3 for metric distance
	// functions, included here as a measured extension.
	AccessMTree
)

// IOStats reports simulated I/O of the last query, priced with the
// paper's cost model (8 ms/page, 200 ns/byte).
type IOStats struct {
	PageAccesses int64
	BytesRead    int64
	IOTime       time.Duration
	CPUTime      time.Duration
}

// Database is an in-memory similarity-search database over voxelized CAD
// objects with simulated page I/O accounting.
type Database struct {
	engine  *core.Engine
	tracker storage.Tracker

	filterIx   *filter.Index              // vector set centroids + refinement
	oneVecTree *xtree.Tree                // 6k-d one-vector features
	vsetScan   *scan.Scanner[[][]float64] // vector set sequential scan
	vsetFile   *storage.PagedFile         // simulated vector set file
	vsetMTree  *mtree.Tree[[][]float64]   // metric index over vector sets
	dirty      bool

	lastIO IOStats
}

// Open creates an empty database.
func Open(cfg Config) (*Database, error) {
	e, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Database{engine: e, dirty: true}, nil
}

// MustOpen is Open, panicking on configuration errors.
func MustOpen(cfg Config) *Database {
	db, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// AddParts voxelizes, extracts and indexes the given parts in parallel.
func (db *Database) AddParts(parts []Part) {
	db.engine.AddParts(parts)
	db.dirty = true
}

// Extract runs the feature pipeline on a part without storing it — for
// building external query objects.
func (db *Database) Extract(p Part) *Object { return db.engine.Extract(p) }

// ExtractMesh runs the feature pipeline on a watertight triangle mesh
// (e.g. loaded from STL with ReadSTL), voxelizing it translation- and
// scale-normalized at both working resolutions. The returned object can
// be used as a query or stored with AddObject.
func (db *Database) ExtractMesh(name string, m *mesh.Mesh) *Object {
	cfg := db.engine.Config()
	b := m.Bounds()
	gH := voxel.VoxelizeMesh(m, b, cfg.RHist)
	gC := voxel.VoxelizeMesh(m, b, cfg.RCover)
	o := db.engine.ExtractGrid(name, gH, gC)
	o.Info = normalize.Info{Center: b.Center(), Extent: b.Size()}
	return o
}

// AddObject stores a pre-extracted object (from Extract or ExtractMesh)
// and returns its id.
func (db *Database) AddObject(o *Object) int {
	id := db.engine.Add(o)
	db.dirty = true
	return id
}

// ReadSTL parses a binary or ASCII STL stream into a mesh for
// ExtractMesh.
func ReadSTL(r io.Reader) (*mesh.Mesh, error) { return mesh.ReadSTL(r) }

// AddSTLFile reads one STL file, extracts it and stores it under its
// base filename. Returns the assigned object id.
func (db *Database) AddSTLFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	m, err := mesh.ReadSTL(f)
	if err != nil {
		return 0, fmt.Errorf("voxset: parsing %s: %w", path, err)
	}
	if len(m.Triangles) == 0 {
		return 0, fmt.Errorf("voxset: %s contains no triangles", path)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return db.AddObject(db.ExtractMesh(name, m)), nil
}

// AddSTLDir indexes every .stl file in a directory (non-recursive) — the
// path real CAD part libraries arrive on. It returns the number of parts
// added; files that fail to parse are reported in errs but do not abort
// the load.
func (db *Database) AddSTLDir(dir string) (added int, errs []error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, []error{err}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.EqualFold(filepath.Ext(e.Name()), ".stl") {
			continue
		}
		if _, err := db.AddSTLFile(filepath.Join(dir, e.Name())); err != nil {
			errs = append(errs, err)
			continue
		}
		added++
	}
	return added, errs
}

// Len returns the number of stored objects.
func (db *Database) Len() int { return db.engine.Len() }

// Object returns the stored object with the given id.
func (db *Database) Object(id int) *Object { return db.engine.Objects()[id] }

// Objects returns all stored objects in id order.
func (db *Database) Objects() []*Object { return db.engine.Objects() }

// Engine exposes the underlying extraction engine for advanced use
// (distance functions, custom evaluations).
func (db *Database) Engine() *core.Engine { return db.engine }

// Save writes the database — configuration and all extracted objects —
// as a gzip-compressed snapshot. Feature extraction is the expensive part
// of the pipeline; snapshots let applications reuse it across runs.
func (db *Database) Save(w io.Writer) error { return db.engine.SaveObjects(w) }

// LoadDatabase reads a snapshot written by Save. Query indexes are
// rebuilt lazily on first use.
func LoadDatabase(r io.Reader) (*Database, error) {
	e, err := core.LoadEngine(r)
	if err != nil {
		return nil, err
	}
	return &Database{engine: e, dirty: true}, nil
}

// LastIO returns the simulated I/O statistics of the most recent query.
func (db *Database) LastIO() IOStats { return db.lastIO }

// rebuild constructs the access structures.
func (db *Database) rebuild() {
	if !db.dirty {
		return
	}
	cfg := db.engine.Config()
	db.filterIx = filter.New(filter.Config{
		K: cfg.Covers, Dim: 6, Tracker: &db.tracker,
	})
	db.oneVecTree = xtree.New(6*cfg.Covers, xtree.Config{Tracker: &db.tracker})
	db.vsetFile = storage.NewPagedFile(storage.DefaultPageSize, &db.tracker)
	matching := func(a, b [][]float64) float64 {
		return dist.MatchingDistance(a, b, dist.L2, dist.WeightNorm)
	}
	db.vsetScan = scan.New(matching, db.vsetFile)
	db.vsetMTree = mtree.New(matching, mtree.Config{
		Tracker:    &db.tracker,
		EntryBytes: 8 + cfg.Covers*6*8,
	})
	for _, o := range db.engine.Objects() {
		db.filterIx.Add(o.VSet, o.ID)
		db.oneVecTree.Insert(o.CoverVec, o.ID)
		db.vsetScan.Add(o.VSet, o.ID)
		db.vsetMTree.Insert(o.VSet, o.ID)
		db.vsetFile.Append(make([]byte, 8+len(o.VSet)*6*8))
	}
	db.dirty = false
}

func (db *Database) beginQuery() time.Time {
	db.rebuild()
	db.tracker.Reset()
	return time.Now()
}

func (db *Database) endQuery(start time.Time) {
	db.lastIO = IOStats{
		PageAccesses: db.tracker.PageAccesses(),
		BytesRead:    db.tracker.BytesRead(),
		IOTime:       db.tracker.IOTime(storage.PaperCostModel),
		CPUTime:      time.Since(start),
	}
}

// KNN returns the k nearest stored objects to the query object.
func (db *Database) KNN(q *Object, k int, opt Query) []Neighbor {
	start := db.beginQuery()
	defer func() { db.endQuery(start) }()

	if opt.Invariance != InvNone || opt.ScaleSensitive {
		return db.invariantKNN(q, k, opt)
	}
	switch {
	case opt.Model == ModelVectorSet && opt.Access == AccessMTree:
		return db.vsetMTree.KNN(q.VSet, k)
	case opt.Model == ModelVectorSet && opt.Access != AccessScan:
		return db.filterIx.KNN(q.VSet, k)
	case opt.Model == ModelCoverSeq && opt.Access != AccessScan:
		return db.oneVecTree.KNN(q.CoverVec, k)
	case opt.Model == ModelVectorSet:
		return db.vsetScan.KNN(q.VSet, k)
	default:
		return db.scanKNN(q, k, opt)
	}
}

// RangeQuery returns all stored objects within eps of the query object.
func (db *Database) RangeQuery(q *Object, eps float64, opt Query) []Neighbor {
	start := db.beginQuery()
	defer func() { db.endQuery(start) }()

	if opt.Invariance != InvNone || opt.ScaleSensitive {
		db.chargeExhaustive(opt.Model)
		measure := db.engine.Distance
		if opt.ScaleSensitive {
			measure = db.engine.DistanceScaleSensitive
		}
		var out []Neighbor
		for _, o := range db.engine.Objects() {
			if d := measure(opt.Model, opt.Invariance, q, o); d <= eps {
				out = append(out, Neighbor{ID: o.ID, Dist: d})
			}
		}
		sortNeighbors(out)
		return out
	}
	switch {
	case opt.Model == ModelVectorSet && opt.Access == AccessMTree:
		return db.vsetMTree.Range(q.VSet, eps)
	case opt.Model == ModelVectorSet && opt.Access != AccessScan:
		return db.filterIx.Range(q.VSet, eps)
	case opt.Model == ModelCoverSeq && opt.Access != AccessScan:
		return db.oneVecTree.Range(q.CoverVec, eps)
	default:
		db.chargeExhaustive(opt.Model)
		var out []Neighbor
		for _, o := range db.engine.Objects() {
			if d := db.engine.Distance(opt.Model, InvNone, q, o); d <= eps {
				out = append(out, Neighbor{ID: o.ID, Dist: d})
			}
		}
		sortNeighbors(out)
		return out
	}
}

func (db *Database) scanKNN(q *Object, k int, opt Query) []Neighbor {
	db.chargeExhaustive(opt.Model)
	all := make([]Neighbor, 0, db.Len())
	for _, o := range db.engine.Objects() {
		all = append(all, Neighbor{ID: o.ID, Dist: db.engine.Distance(opt.Model, InvNone, q, o)})
	}
	sortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// chargeExhaustive accounts the physical plan of an invariant query: a
// sequential read of the feature file (vector sets or one-vector
// records).
func (db *Database) chargeExhaustive(m Model) {
	switch m {
	case ModelVectorSet, ModelCoverSeqPerm:
		db.vsetFile.Scan(func(int, []byte) {})
	default:
		cfg := db.engine.Config()
		recBytes := 6 * cfg.Covers * 8
		db.tracker.AddPageAccess(db.Len()*recBytes/storage.DefaultPageSize + 1)
		db.tracker.AddBytes(db.Len() * recBytes)
	}
}

func (db *Database) invariantKNN(q *Object, k int, opt Query) []Neighbor {
	db.chargeExhaustive(opt.Model)
	measure := db.engine.Distance
	if opt.ScaleSensitive {
		measure = db.engine.DistanceScaleSensitive
	}
	all := make([]Neighbor, 0, db.Len())
	for _, o := range db.engine.Objects() {
		all = append(all, Neighbor{
			ID:   o.ID,
			Dist: measure(opt.Model, opt.Invariance, q, o),
		})
	}
	sortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sortNeighbors(ns []Neighbor) {
	index.SortNeighbors(ns)
}

// Cluster runs OPTICS over all stored objects under the given model and
// invariance with the given minPts (eps unbounded, as in the paper's
// evaluation) and returns the cluster ordering. Distance rows are
// computed in parallel across CPU cores; the ordering is identical to a
// sequential run.
func (db *Database) Cluster(model Model, inv Invariance, minPts int) ClusterResult {
	return optics.RunRows(db.Len(), db.engine.RowFunc(model, inv), math.Inf(1), minPts)
}

// ClusterLabels cuts a cluster ordering at reachability eps and returns
// per-object cluster labels (0 = noise).
func ClusterLabels(r ClusterResult, eps float64) []int { return optics.EpsCut(r, eps) }

// ClusterPurity scores cluster labels against ground-truth labels.
func ClusterPurity(clusters, truth []int) float64 { return optics.Purity(clusters, truth) }

// ClusterHierarchy extracts the hierarchical cluster tree from a
// reachability plot (nested valleys — e.g. tire sub-families inside the
// tire cluster, the paper's Figure 9c G/G₁/G₂ pattern). minSize
// suppresses clusters with fewer objects.
func ClusterHierarchy(r ClusterResult, minSize int) []*ClusterNode {
	return optics.HierarchicalClusters(r, minSize)
}

// RenderHierarchy pretty-prints a cluster tree; labelFn (optional)
// summarizes each node's member objects.
func RenderHierarchy(forest []*ClusterNode, r ClusterResult, labelFn func(objects []int) string) string {
	return optics.RenderTree(forest, r, labelFn)
}

// RenderReachability renders a reachability plot as ASCII art.
func RenderReachability(r ClusterResult, width, height int) string {
	return optics.RenderASCII(r, width, height)
}

// PartialDistance computes the partial similarity score of paper §4.1:
// the minimal total distance of the best i cover correspondences between
// the two objects' vector sets (i ≤ min cardinality). Unmatched covers
// cost nothing, so the score measures shared sub-structure. It is not a
// metric; use it for ranking.
func PartialDistance(a, b *Object, i int) float64 {
	return dist.PartialMatching(a.VSet, b.VSet, dist.L2, i)
}

// MaxPartialPairs returns the largest valid i for PartialDistance of two
// objects: the smaller vector set cardinality.
func MaxPartialPairs(a, b *Object) int {
	if len(a.VSet) < len(b.VSet) {
		return len(a.VSet)
	}
	return len(b.VSet)
}

// PartialKNN returns the k stored objects with the smallest partial
// matching score against the query: the cost of the best
// min(pairs, MaxPartialPairs) cover correspondences. Use it to find parts
// sharing sub-structure with the query regardless of their other
// geometry. Evaluated exhaustively (the partial score is not a metric, so
// neither the centroid filter nor the M-tree applies).
func (db *Database) PartialKNN(q *Object, k, pairs int) []Neighbor {
	start := db.beginQuery()
	defer func() { db.endQuery(start) }()
	db.chargeExhaustive(ModelVectorSet)
	all := make([]Neighbor, 0, db.Len())
	for _, o := range db.engine.Objects() {
		i := pairs
		if m := MaxPartialPairs(q, o); i > m {
			i = m
		}
		all = append(all, Neighbor{ID: o.ID, Dist: PartialDistance(q, o, i)})
	}
	sortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// FilterRefinements returns the number of exact distance computations the
// filter pipeline performed since the database was (re)built — the
// filter-selectivity statistic.
func (db *Database) FilterRefinements() int64 {
	if db.filterIx == nil {
		return 0
	}
	return db.filterIx.Refinements()
}

// String summarizes the database.
func (db *Database) String() string {
	cfg := db.engine.Config()
	return fmt.Sprintf("voxset.Database{objects: %d, k: %d, rHist: %d, rCover: %d}",
		db.Len(), cfg.Covers, cfg.RHist, cfg.RCover)
}
