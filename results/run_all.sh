#!/bin/bash
# Full-scale reproduction run; outputs land in results/.
# Roughly 30 minutes on a single core.
set -x
cd "$(dirname "$0")/.."
go run ./cmd/voxperm -dataset car -covers 3,5,7,9          > results/table1.txt 2>&1
go run ./cmd/voxknn -n 5000 -queries 100 -k 10             > results/table2.txt 2>&1
for fig in 6a 6c 7a 8a 9a 9c; do
  go run ./cmd/voxoptics -figure $fig -classes -tree -csv results/fig$fig.csv > results/fig$fig.txt 2>&1
done
for fig in 6b 6d 7b 8b 9b 9d; do
  go run ./cmd/voxoptics -figure $fig -n 800 -classes -csv results/fig$fig.csv > results/fig$fig.txt 2>&1
done
go run ./cmd/voxclassify -dataset car                      > results/classify_car.txt 2>&1
go run ./cmd/voxclassify -dataset aircraft -n 500          > results/classify_aircraft.txt 2>&1
go run ./cmd/voxsweep -what covers -ks 1,3,5,7,9           > results/sweep_covers.txt 2>&1
go run ./cmd/voxsweep -what resolution -rs 9,12,15,18      > results/sweep_resolution.txt 2>&1
go run ./cmd/voxsweep -what histogram                      > results/sweep_histogram.txt 2>&1
echo DONE
