// Command benchcompare gates the perf trajectory: it diffs a new
// benchjson document against a prior one and exits nonzero when the
// k-nn p50 regressed by more than the threshold. With -old empty it
// finds the latest prior BENCH_<pr>.json (highest PR below the new
// document's) in the new file's directory, so `make bench-compare`
// needs no bookkeeping as the sequence grows.
//
//	benchcompare -new BENCH_7.json                  # vs BENCH_6.json
//	benchcompare -new BENCH_7.json -old BENCH_5.json -threshold 0.1
//
// All headline metrics are printed as old → new ratios; only the p50
// gate fails the run, because the small fixed corpus makes tail and
// ingest numbers too noisy for a hard gate on shared hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// doc is the subset of the benchjson schema the gate reads.
type doc struct {
	Schema string `json:"schema"`
	PR     int    `json:"pr"`
	Ingest struct {
		MSPerObject float64 `json:"ms_per_object"`
	} `json:"ingest"`
	KNN struct {
		P50MS float64 `json:"p50_ms"`
		P99MS float64 `json:"p99_ms"`
	} `json:"knn"`
	Allocs struct {
		KNNPerQuery  float64 `json:"knn_per_query"`
		DecodePerSet float64 `json:"decode_per_set"`
	} `json:"allocs"`
	Mmap *struct {
		OpenMS   float64 `json:"open_ms"`
		KNNP50MS float64 `json:"knn_p50_ms"`
	} `json:"mmap"`
	Approx *struct {
		ExactP50MS  float64 `json:"exact_p50_ms"`
		ApproxP50MS float64 `json:"approx_p50_ms"`
		Speedup     float64 `json:"speedup"`
		RecallAt10  float64 `json:"recall_at_10"`
	} `json:"approx"`
}

func main() {
	var (
		newPath   = flag.String("new", "", "new benchmark document (required)")
		oldPath   = flag.String("old", "", "baseline document (default: latest prior BENCH_<pr>.json beside -new)")
		threshold = flag.Float64("threshold", 0.20, "max tolerated fractional p50 regression")
	)
	flag.Parse()
	if *newPath == "" {
		fatal("-new is required")
	}
	cur, err := read(*newPath)
	if err != nil {
		fatal("%v", err)
	}
	if *oldPath == "" {
		*oldPath, err = latestPrior(*newPath, cur.PR)
		if err != nil {
			fatal("%v", err)
		}
	}
	old, err := read(*oldPath)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("benchcompare: %s (pr %d) vs %s (pr %d)\n", *newPath, cur.PR, *oldPath, old.PR)
	row("knn p50 ms", old.KNN.P50MS, cur.KNN.P50MS)
	row("knn p99 ms", old.KNN.P99MS, cur.KNN.P99MS)
	row("ingest ms/object", old.Ingest.MSPerObject, cur.Ingest.MSPerObject)
	row("knn allocs/query", old.Allocs.KNNPerQuery, cur.Allocs.KNNPerQuery)
	row("decode allocs/set", old.Allocs.DecodePerSet, cur.Allocs.DecodePerSet)
	if old.Mmap != nil && cur.Mmap != nil {
		row("mmap open ms", old.Mmap.OpenMS, cur.Mmap.OpenMS)
		row("mmap knn p50 ms", old.Mmap.KNNP50MS, cur.Mmap.KNNP50MS)
	}
	// The approx section appears with the sketch tier; a prior document
	// without it is an older checkout, not a regression — the rows print
	// as new gauges and nothing gates on them.
	if cur.Approx != nil {
		if old.Approx != nil {
			row("approx knn p50 ms", old.Approx.ApproxP50MS, cur.Approx.ApproxP50MS)
			row("approx speedup", old.Approx.Speedup, cur.Approx.Speedup)
			row("approx recall@10", old.Approx.RecallAt10, cur.Approx.RecallAt10)
		} else {
			row("approx knn p50 ms", 0, cur.Approx.ApproxP50MS)
			row("approx speedup", 0, cur.Approx.Speedup)
			row("approx recall@10", 0, cur.Approx.RecallAt10)
		}
	}

	if old.KNN.P50MS > 0 {
		reg := cur.KNN.P50MS/old.KNN.P50MS - 1
		if reg > *threshold {
			fatal("knn p50 regressed %.1f%% (limit %.0f%%): %.4g ms -> %.4g ms",
				reg*100, *threshold*100, old.KNN.P50MS, cur.KNN.P50MS)
		}
	}
	fmt.Println("benchcompare: ok")
}

func row(name string, old, cur float64) {
	ratio := "n/a"
	if old > 0 {
		ratio = fmt.Sprintf("%+.1f%%", (cur/old-1)*100)
	}
	fmt.Printf("  %-18s %10.4g -> %-10.4g %s\n", name, old, cur, ratio)
}

func read(path string) (*doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != "voxset-bench/1" {
		return nil, fmt.Errorf("%s: schema %q, want voxset-bench/1", path, d.Schema)
	}
	return &d, nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestPrior picks the highest-numbered BENCH_<pr>.json below pr in
// the directory of newPath.
func latestPrior(newPath string, pr int) (string, error) {
	dir := filepath.Dir(newPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	bestPR, best := -1, ""
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n >= pr || n <= bestPR {
			continue
		}
		bestPR, best = n, filepath.Join(dir, e.Name())
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<pr>.json prior to pr %d in %s", pr, dir)
	}
	return best, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchcompare: "+format+"\n", args...)
	os.Exit(1)
}
