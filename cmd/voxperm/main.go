// Command voxperm reproduces paper Table 1: the percentage of minimal-
// matching-distance computations during an OPTICS run (equivalently: over
// all object pairs) whose optimal matching requires a proper permutation
// of the cover order, for several cover budgets k.
//
// Usage:
//
//	voxperm -dataset car -covers 3,5,7,9
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/voxset/voxset/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxperm: ")
	var (
		dataset = flag.String("dataset", "car", "dataset: car | aircraft")
		n       = flag.Int("n", 500, "aircraft dataset size (car is always ≈200)")
		seed    = flag.Int64("seed", 42, "dataset seed")
		covers  = flag.String("covers", "3,5,7,9", "comma-separated cover budgets")
		rCover  = flag.Int("rcover", 15, "cover voxel resolution (paper: 15)")
	)
	flag.Parse()

	var ks []int
	for _, s := range strings.Split(*covers, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k < 1 {
			log.Fatalf("bad cover budget %q", s)
		}
		ks = append(ks, k)
	}

	ds := experiments.Car
	if *dataset == "aircraft" {
		ds = experiments.Aircraft
	}
	parts := ds.Parts(*seed, *n)
	log.Printf("%s dataset, %d parts, cover budgets %v", ds, len(parts), ks)

	rows, err := experiments.Table1(parts, ks, *rCover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 1 — percentage of proper permutations")
	fmt.Print(experiments.FormatTable1(rows))
}
