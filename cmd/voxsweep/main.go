// Command voxsweep regenerates the parameter calibration the paper only
// alludes to ("These values were optimized to the quality of the
// evaluation results", §5.1): clustering quality (best ε-cut adjusted
// Rand index against the part families) as a function of the cover budget
// k, the cover grid resolution r, the histogram partition count p and the
// solid-angle kernel radius.
//
// Usage:
//
//	voxsweep -what covers -ks 1,3,5,7,9
//	voxsweep -what resolution -rs 9,12,15,18
//	voxsweep -what histogram
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/voxset/voxset/internal/experiments"
)

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			log.Fatalf("bad float %q", f)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxsweep: ")
	var (
		what    = flag.String("what", "covers", "sweep target: covers | resolution | histogram")
		dataset = flag.String("dataset", "car", "dataset: car | aircraft")
		n       = flag.Int("n", 300, "aircraft dataset size")
		seed    = flag.Int64("seed", 42, "dataset seed")
		ks      = flag.String("ks", "1,3,5,7,9", "cover budgets (covers sweep)")
		rs      = flag.String("rs", "9,12,15,18", "cover resolutions (resolution sweep)")
		psList  = flag.String("ps", "3,5,6", "histogram partitions (histogram sweep; must divide rhist)")
		radii   = flag.String("radii", "2,3,4", "solid-angle kernel radii (histogram sweep)")
		rHist   = flag.Int("rhist", 30, "histogram resolution (histogram sweep)")
		minPts  = flag.Int("minpts", 5, "OPTICS MinPts")
		covers  = flag.Int("covers", 7, "cover budget (resolution sweep)")
	)
	flag.Parse()

	ds := experiments.Car
	if *dataset == "aircraft" {
		ds = experiments.Aircraft
	}
	parts := ds.Parts(*seed, *n)
	log.Printf("%s dataset, %d parts, sweeping %s…", ds, len(parts), *what)

	var (
		rows []experiments.SweepRow
		err  error
	)
	switch *what {
	case "covers":
		rows, err = experiments.SweepCovers(parts, parseInts(*ks), 15, *minPts)
	case "resolution":
		rows, err = experiments.SweepResolution(parts, parseInts(*rs), *covers, *minPts)
	case "histogram":
		rows, err = experiments.SweepHistogram(parts, *rHist, parseInts(*psList), parseFloats(*radii), *minPts)
	default:
		log.Fatalf("unknown sweep %q", *what)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.FormatSweep(rows))
}
