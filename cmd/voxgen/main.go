// Command voxgen generates the synthetic CAD datasets (DESIGN.md §3) and
// writes a manifest plus optional artifacts: voxel-occupancy dumps and
// binary STL meshes of the greedy cover approximations.
//
// Usage:
//
//	voxgen -dataset car -out ./data
//	voxgen -dataset aircraft -n 5000 -seed 7 -out ./data -stl -vox
//	voxgen -dataset car -snapshot ./data/car.vsnap   # build a voxserve database
//
// Streaming mode builds arbitrarily large sharded snapshot directories
// with memory bounded by the batch size — parts are generated, voxelized
// and feature-extracted in rounds, and each vector set goes straight to
// its shard's paged (VXSNAP02) writer:
//
//	voxgen -stream -count 1000000 -shards 16 -out ./data/million
//	voxserve -snapshot-dir ./data/million     # serves it memory-mapped
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/voxset/voxset/internal/cadgen"
	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/cover"
	"github.com/voxset/voxset/internal/experiments"
	"github.com/voxset/voxset/internal/geom"
	"github.com/voxset/voxset/internal/mesh"
	"github.com/voxset/voxset/internal/normalize"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/voxel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxgen: ")
	var (
		dataset = flag.String("dataset", "car", "dataset to generate: car | aircraft")
		n       = flag.Int("n", 0, "aircraft dataset size (default 5000; ignored for car)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", ".", "output directory")
		res     = flag.Int("r", 15, "voxel resolution for artifacts")
		covers  = flag.Int("covers", 7, "cover budget for -stl approximations")
		stl     = flag.Bool("stl", false, "write STL meshes of the cover approximations")
		surf    = flag.Bool("surfstl", false, "write STL surface meshes of the voxelizations")
		vox     = flag.Bool("vox", false, "write voxel occupancy dumps (text)")
		gridbin = flag.Bool("gridbin", false, "write binary voxel grids (.voxg)")
		limit   = flag.Int("limit", 50, "max parts to write artifacts for (0 = all)")
		workers = flag.Int("workers", 0, "voxelization workers (0 = VOXSET_WORKERS, else one per CPU)")
		snap    = flag.String("snapshot", "", "also run the full feature-extraction pipeline and write a vsdb snapshot (serve it with voxserve -snapshot)")
		stream  = flag.Bool("stream", false, "streaming ingest: write sharded paged snapshots to -out with bounded memory (skips manifest/artifacts)")
		count   = flag.Int("count", 0, "part count for -stream (aircraft; default 5000, car is fixed-size)")
		shards  = flag.Int("shards", 8, "shard count for -stream (routing identity of the output directory)")
		batch   = flag.Int("batch", 0, "extraction batch size for -stream (0 = default; bounds peak memory)")
	)
	flag.Parse()

	if *stream {
		runStream(*dataset, *seed, *count, *shards, *batch, *covers, *workers, *out)
		return
	}

	var parts []cadgen.Part
	switch *dataset {
	case "car":
		parts = experiments.Car.Parts(*seed, 0)
	case "aircraft":
		parts = experiments.Aircraft.Parts(*seed, *n)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	manifest, err := os.Create(filepath.Join(*out, *dataset+"_manifest.csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "name,class,class_id,voxels,covers,final_err,extent_x,extent_y,extent_z")

	// Voxelize and extract covers in parallel into per-part slots, then
	// write the manifest and artifacts sequentially in part order.
	type genResult struct {
		g    *voxel.Grid
		seq  cover.Sequence
		info normalize.Info
	}
	res2 := make([]genResult, len(parts))
	w := parallel.Workers(*workers, parallel.Auto())
	parallel.ForEach(len(parts), w, func(i int) {
		g, info := normalize.VoxelizeNormalized(parts[i].Solid, *res)
		res2[i] = genResult{g: g, seq: cover.Greedy(g, *covers), info: info}
	})

	written := 0
	for pi, p := range parts {
		g, seq, info := res2[pi].g, res2[pi].seq, res2[pi].info
		fmt.Fprintf(manifest, "%s,%s,%d,%d,%d,%d,%.4g,%.4g,%.4g\n",
			p.Name, p.Class, p.ClassID, g.Count(), len(seq.Covers),
			seq.FinalErr(g.Count()), info.Extent.X, info.Extent.Y, info.Extent.Z)

		if (*stl || *vox || *surf || *gridbin) && (*limit == 0 || written < *limit) {
			if *stl {
				if err := writeCoverSTL(filepath.Join(*out, p.Name+".stl"), seq); err != nil {
					log.Fatal(err)
				}
			}
			if *surf {
				if err := writeSurfaceSTL(filepath.Join(*out, p.Name+".surf.stl"), g); err != nil {
					log.Fatal(err)
				}
			}
			if *vox {
				if err := writeVox(filepath.Join(*out, p.Name+".vox.txt"), g); err != nil {
					log.Fatal(err)
				}
			}
			if *gridbin {
				if err := writeGrid(filepath.Join(*out, p.Name+".voxg"), g); err != nil {
					log.Fatal(err)
				}
			}
			written++
		}
	}
	log.Printf("wrote %d parts to %s (artifacts for %d)", len(parts), *out, written)

	if *snap != "" {
		d, err := experiments.ParseDataset(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Covers = *covers
		cfg.Workers = *workers
		db, err := experiments.BuildSnapshotDB(d, *seed, *n, cfg, *workers, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.SaveFile(*snap); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote snapshot %s (%d objects, covers %d)", *snap, db.Len(), *covers)
	}
}

// runStream is the -stream path: no materialized part list, no
// artifacts — the dataset flows part by part through feature extraction
// into per-shard paged snapshot writers, so -count can be a million
// while RAM stays bounded by one extraction batch.
func runStream(dataset string, seed int64, count, shards, batch, covers, workers int, out string) {
	var src cadgen.PartSource
	switch dataset {
	case "car":
		src = cadgen.NewSliceSource(cadgen.CarDataset(seed))
	case "aircraft":
		if count <= 0 {
			count = 5000
		}
		src = cadgen.NewAircraftSource(seed, count)
	default:
		log.Fatalf("unknown dataset %q", dataset)
	}
	cfg := core.DefaultConfig()
	cfg.Covers = covers
	cfg.Workers = workers
	m, err := experiments.StreamShards(src, cfg, out, experiments.StreamConfig{
		Shards:  shards,
		Workers: workers,
		Batch:   batch,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := uint64(0)
	for _, e := range m.Epochs {
		total += e
	}
	log.Printf("streamed %d objects into %d paged shards at %s (serve with voxserve -snapshot-dir)",
		total, m.Shards, out)
}

// writeCoverSTL renders the additive covers of the sequence as a box mesh.
func writeCoverSTL(path string, seq cover.Sequence) error {
	m := &mesh.Mesh{Name: filepath.Base(path)}
	for _, c := range seq.Covers {
		if c.Sign < 0 {
			continue // STL has no boolean subtraction; additive hull only
		}
		m.Merge(mesh.NewBox(
			geom.V(float64(c.X0), float64(c.Y0), float64(c.Z0)),
			geom.V(float64(c.X1+1), float64(c.Y1+1), float64(c.Z1+1)),
		))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mesh.WriteSTL(f, m)
}

// writeSurfaceSTL writes the exact voxel boundary surface as binary STL.
func writeSurfaceSTL(path string, g *voxel.Grid) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return mesh.WriteSTL(f, voxel.ToMesh(g, filepath.Base(path)))
}

// writeGrid writes the grid in the compact binary .voxg format.
func writeGrid(path string, g *voxel.Grid) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeVox dumps the grid as z-slices of 0/1 characters.
func writeVox(path string, g *voxel.Grid) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for z := 0; z < g.Nz; z++ {
		fmt.Fprintf(f, "# z = %d\n", z)
		for y := 0; y < g.Ny; y++ {
			row := make([]byte, g.Nx)
			for x := 0; x < g.Nx; x++ {
				if g.Get(x, y, z) {
					row[x] = '1'
				} else {
					row[x] = '0'
				}
			}
			fmt.Fprintf(f, "%s\n", row)
		}
	}
	return nil
}
