// Command voxquery runs ad-hoc similarity queries against a generated
// dataset: k-nn or ε-range under any of the similarity models, with
// optional 90°-rotation/reflection invariance, printing the matched parts
// and the simulated I/O cost of the query.
//
// Usage:
//
//	voxquery -dataset car -query 17 -k 10 -model vectorset -inv full
//	voxquery -dataset aircraft -n 1000 -query 3 -eps 12 -model vectorset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/voxset/voxset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxquery: ")
	var (
		dataset = flag.String("dataset", "car", "dataset: car | aircraft")
		n       = flag.Int("n", 1000, "aircraft dataset size")
		seed    = flag.Int64("seed", 42, "dataset seed")
		query   = flag.Int("query", 0, "query object id")
		k       = flag.Int("k", 10, "number of neighbors (k-nn mode)")
		eps     = flag.Float64("eps", 0, "range radius (> 0 switches to ε-range mode)")
		model   = flag.String("model", "vectorset", "model: volume | solidangle | coverseq | permseq | vectorset")
		inv     = flag.String("inv", "none", "invariance: none | rot | full")
		access  = flag.String("access", "auto", "access path: auto | filter | scan | mtree")
		pca     = flag.Bool("pca", false, "align objects to principal axes before voxelization (§3.2)")
		stlQ    = flag.String("stl", "", "query with an external STL file instead of a stored object")
	)
	flag.Parse()

	m, err := voxset.ParseModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	var invariance voxset.Invariance
	switch *inv {
	case "none":
		invariance = voxset.InvNone
	case "rot":
		invariance = voxset.InvRotation90
	case "full":
		invariance = voxset.InvRotoReflection
	default:
		log.Fatalf("unknown invariance %q", *inv)
	}
	var acc voxset.Access
	switch *access {
	case "auto":
		acc = voxset.AccessAuto
	case "filter":
		acc = voxset.AccessFilter
	case "scan":
		acc = voxset.AccessScan
	case "mtree":
		acc = voxset.AccessMTree
	default:
		log.Fatalf("unknown access path %q", *access)
	}

	var parts []voxset.Part
	if *dataset == "car" {
		parts = voxset.CarParts(*seed)
	} else {
		parts = voxset.AircraftParts(*seed, *n)
	}
	log.Printf("extracting %d parts…", len(parts))
	cfg := voxset.DefaultConfig()
	cfg.UsePCA = *pca
	db := voxset.MustOpen(cfg)
	db.AddParts(parts)

	var q *voxset.Object
	if *stlQ != "" {
		f, err := os.Open(*stlQ)
		if err != nil {
			log.Fatal(err)
		}
		m, err := voxset.ReadSTL(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		q = db.ExtractMesh(*stlQ, m)
	} else {
		if *query < 0 || *query >= db.Len() {
			log.Fatalf("query id %d out of range [0,%d)", *query, db.Len())
		}
		q = db.Object(*query)
	}
	opt := voxset.Query{Model: m, Invariance: invariance, Access: acc}

	var res []voxset.Neighbor
	if *eps > 0 {
		log.Printf("ε-range query: %s, ε = %g, model %v", q.Name, *eps, m)
		res = db.RangeQuery(q, *eps, opt)
	} else {
		log.Printf("%d-nn query: %s, model %v", *k, q.Name, m)
		res = db.KNN(q, *k, opt)
	}

	fmt.Printf("\nquery: %-20s class %s\n\n", q.Name, q.Class)
	for i, nb := range res {
		o := db.Object(nb.ID)
		marker := " "
		if o.Class == q.Class {
			marker = "*"
		}
		fmt.Printf("%3d. %s %-20s class %-12s dist %8.4f\n", i+1, marker, o.Name, o.Class, nb.Dist)
	}
	io := db.LastIO()
	fmt.Printf("\nsimulated I/O: %d pages, %d bytes → %v; CPU: %v\n",
		io.PageAccesses, io.BytesRead, io.IOTime, io.CPUTime)
}
