// Command benchjson is the standing performance harness (ROADMAP "perf
// trajectory"): it runs the ingest / k-nn / shard-scaling / allocation
// measurements over a deterministic synthetic corpus and emits one JSON
// document (BENCH_<pr>.json) so every PR appends a comparable data
// point. The corpus, query set and iteration counts are fixed by flags
// and a constant seed — two runs on the same machine measure the same
// work, so ratios between two checkouts are meaningful.
//
//	go run ./cmd/benchjson -pr 6 -out BENCH_6.json
//	go run ./cmd/benchjson -quick -out /tmp/smoke.json   # CI smoke
//
// The emitted document is schema-checked before the process exits:
// a harness that silently stops measuring fails loudly instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/voxset/voxset/internal/cluster"
	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/vectorset"
	"github.com/voxset/voxset/internal/vsdb"
)

// seed fixes the synthetic corpus across runs and checkouts.
const seed = 0x5eed6

// Doc is the emitted JSON document.
type Doc struct {
	Schema string `json:"schema"` // "voxset-bench/1"
	PR     int    `json:"pr"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	CPUs   int    `json:"cpus"`

	Config  ConfigDoc  `json:"config"`
	Ingest  IngestDoc  `json:"ingest"`
	KNN     KNNDoc     `json:"knn"`
	Allocs  AllocsDoc  `json:"allocs"`
	Batch   *BatchDoc  `json:"batch,omitempty"`
	Shards  []ShardDoc `json:"shards"`
	Baseline *Doc      `json:"baseline,omitempty"`
}

// ConfigDoc records the workload shape the numbers were measured under.
type ConfigDoc struct {
	Objects int `json:"objects"`
	Dim     int `json:"dim"`
	MaxCard int `json:"max_card"`
	Queries int `json:"queries"`
	K       int `json:"k"`
	Rounds  int `json:"rounds"`
}

// IngestDoc is the bulk-load measurement: one vsdb.BulkInsert of the
// whole corpus (centroids, STR bulk load, record serialization).
type IngestDoc struct {
	MSPerObject float64 `json:"ms_per_object"`
	TotalMS     float64 `json:"total_ms"`
}

// KNNDoc is the exact k-nn latency distribution over the query set.
type KNNDoc struct {
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// AllocsDoc pins the hot-path allocation counts.
type AllocsDoc struct {
	MatchingPerOp float64 `json:"matching_per_op"`
	KNNPerQuery   float64 `json:"knn_per_query"`
	DecodePerSet  float64 `json:"decode_per_set"`
}

// BatchDoc compares the batched query path against N sequential calls
// on the same corpus (absent when the checkout predates KNNBatch).
type BatchDoc struct {
	SequentialQPS float64 `json:"sequential_qps"`
	BatchQPS      float64 `json:"batch_qps"`
	Speedup       float64 `json:"speedup"`
}

// ShardDoc is one row of the scatter-gather scaling measurement.
type ShardDoc struct {
	Shards int     `json:"shards"`
	P50MS  float64 `json:"knn_p50_ms"`
}

func main() {
	var (
		pr       = flag.Int("pr", 6, "PR number stamped into the document")
		out      = flag.String("out", "", "output path (default stdout)")
		quick    = flag.Bool("quick", false, "small corpus / few rounds (CI smoke)")
		baseline = flag.String("baseline", "", "path of a previous run to embed under \"baseline\"")
	)
	flag.Parse()

	cfg := ConfigDoc{Objects: 4096, Dim: 6, MaxCard: 7, Queries: 32, K: 10, Rounds: 5}
	if *quick {
		cfg = ConfigDoc{Objects: 512, Dim: 6, MaxCard: 7, Queries: 8, K: 10, Rounds: 2}
	}

	doc := run(cfg)
	doc.Schema = "voxset-bench/1"
	doc.PR = *pr
	doc.Date = time.Now().UTC().Format(time.RFC3339)
	doc.Go = runtime.Version()
	doc.CPUs = runtime.NumCPU()

	if *baseline != "" {
		prev, err := readDoc(*baseline)
		if err != nil {
			fatal("reading baseline: %v", err)
		}
		prev.Baseline = nil // one level of history is enough
		doc.Baseline = prev
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}

	// Self-check: decode what was emitted and validate the schema, so a
	// harness that stops measuring cannot silently produce an empty file.
	var back Doc
	if err := json.Unmarshal(buf, &back); err != nil {
		fatal("schema: emitted document does not decode: %v", err)
	}
	if err := validate(&back); err != nil {
		fatal("schema: %v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func readDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// validate enforces the schema contract bench-smoke relies on.
func validate(d *Doc) error {
	switch {
	case d.Schema != "voxset-bench/1":
		return fmt.Errorf("schema field %q", d.Schema)
	case d.Config.Objects <= 0 || d.Config.Dim <= 0 || d.Config.MaxCard <= 0:
		return fmt.Errorf("empty config")
	case d.Ingest.MSPerObject <= 0:
		return fmt.Errorf("ingest not measured")
	case d.KNN.P50MS <= 0 || d.KNN.P99MS < d.KNN.P50MS:
		return fmt.Errorf("knn percentiles implausible (p50=%v p99=%v)", d.KNN.P50MS, d.KNN.P99MS)
	case len(d.Shards) == 0:
		return fmt.Errorf("shard scaling not measured")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Corpus

// corpus builds the deterministic synthetic object set: cardinalities
// cycle 1..MaxCard, components are uniform in [0, 10) — the value range
// of normalized cover features.
func corpus(cfg ConfigDoc) (ids []uint64, sets [][][]float64, queries [][][]float64) {
	rng := rand.New(rand.NewSource(seed))
	makeSet := func() [][]float64 {
		card := 1 + rng.Intn(cfg.MaxCard)
		set := make([][]float64, card)
		for i := range set {
			v := make([]float64, cfg.Dim)
			for j := range v {
				v[j] = rng.Float64() * 10
			}
			set[i] = v
		}
		return set
	}
	ids = make([]uint64, cfg.Objects)
	sets = make([][][]float64, cfg.Objects)
	for i := range sets {
		ids[i] = uint64(i + 1)
		sets[i] = makeSet()
	}
	queries = make([][][]float64, cfg.Queries)
	for i := range queries {
		queries[i] = makeSet()
	}
	return ids, sets, queries
}

func openDB(cfg ConfigDoc) *vsdb.DB {
	db, err := vsdb.Open(vsdb.Config{Dim: cfg.Dim, MaxCard: cfg.MaxCard, Workers: 1})
	if err != nil {
		fatal("open: %v", err)
	}
	return db
}

// ---------------------------------------------------------------------------
// Measurements

func run(cfg ConfigDoc) *Doc {
	ids, sets, queries := corpus(cfg)
	doc := &Doc{Config: cfg}

	// Ingest: best of Rounds bulk loads into a fresh database (best-of
	// suppresses GC noise; the loaded database of the last round serves
	// the query measurements).
	var db *vsdb.DB
	best := time.Duration(1<<62 - 1)
	for r := 0; r < cfg.Rounds; r++ {
		db = openDB(cfg)
		start := time.Now()
		if err := db.BulkInsert(ids, sets); err != nil {
			fatal("bulk insert: %v", err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	doc.Ingest = IngestDoc{
		MSPerObject: ms(best) / float64(cfg.Objects),
		TotalMS:     ms(best),
	}

	// KNN latency distribution: every query measured Rounds times, after
	// one untimed warmup pass.
	for _, q := range queries {
		db.KNN(q, cfg.K)
	}
	var lats []float64
	for r := 0; r < cfg.Rounds; r++ {
		for _, q := range queries {
			start := time.Now()
			db.KNN(q, cfg.K)
			lats = append(lats, ms(time.Since(start)))
		}
	}
	doc.KNN = KNNDoc{
		P50MS:  percentile(lats, 0.50),
		P99MS:  percentile(lats, 0.99),
		MeanMS: mean(lats),
	}

	// Allocations: the matching kernel on a held workspace, one full k-nn
	// query, and one vector-set record decode.
	ws := dist.GetWorkspace()
	x, y := sets[0], sets[1%len(sets)]
	doc.Allocs.MatchingPerOp = testing.AllocsPerRun(100, func() {
		ws.MatchingDistance(x, y, dist.L2, dist.WeightNorm)
	})
	dist.PutWorkspace(ws)
	q := queries[0]
	doc.Allocs.KNNPerQuery = testing.AllocsPerRun(10, func() { db.KNN(q, cfg.K) })
	doc.Allocs.DecodePerSet = decodeAllocs(sets[0])

	// Batched query path vs the same queries issued sequentially.
	doc.Batch = measureBatch(db, queries, cfg)

	// Shard scaling: scatter-gather k-nn p50 at 1 and 4 shards.
	for _, n := range []int{1, 4} {
		c, err := cluster.New(cluster.Config{
			Shards: n, Dim: cfg.Dim, MaxCard: cfg.MaxCard, Workers: 1,
		})
		if err != nil {
			fatal("cluster: %v", err)
		}
		if err := c.BulkInsert(ids, sets); err != nil {
			fatal("cluster bulk insert: %v", err)
		}
		for _, q := range queries {
			if _, err := c.KNN(q, cfg.K); err != nil {
				fatal("cluster knn: %v", err)
			}
		}
		var sl []float64
		for r := 0; r < cfg.Rounds; r++ {
			for _, q := range queries {
				start := time.Now()
				if _, err := c.KNN(q, cfg.K); err != nil {
					fatal("cluster knn: %v", err)
				}
				sl = append(sl, ms(time.Since(start)))
			}
		}
		doc.Shards = append(doc.Shards, ShardDoc{Shards: n, P50MS: percentile(sl, 0.50)})
	}
	return doc
}

func decodeAllocs(set [][]float64) float64 {
	var buf []byte
	{
		var w sliceWriter
		if _, err := vectorset.New(set).WriteTo(&w); err != nil {
			fatal("encode: %v", err)
		}
		buf = w.b
	}
	return testing.AllocsPerRun(100, func() {
		var vs vectorset.Set
		if _, err := vs.ReadFrom(&sliceReader{b: buf}); err != nil {
			fatal("decode: %v", err)
		}
	})
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// sliceReader is a trivial io.Reader over a byte slice that is itself
// allocation-free (bytes.NewReader would add an allocation per run).
type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
