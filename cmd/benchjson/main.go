// Command benchjson is the standing performance harness (ROADMAP "perf
// trajectory"): it runs the ingest / k-nn / shard-scaling / allocation
// measurements over a deterministic synthetic corpus and emits one JSON
// document (BENCH_<pr>.json) so every PR appends a comparable data
// point. The corpus, query set and iteration counts are fixed by flags
// and a constant seed — two runs on the same machine measure the same
// work, so ratios between two checkouts are meaningful.
//
//	go run ./cmd/benchjson -pr 6 -out BENCH_6.json
//	go run ./cmd/benchjson -quick -out /tmp/smoke.json   # CI smoke
//
// The emitted document is schema-checked before the process exits:
// a harness that silently stops measuring fails loudly instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/voxset/voxset/internal/cluster"
	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/index/sketch"
	"github.com/voxset/voxset/internal/recall"
	"github.com/voxset/voxset/internal/snapshot"
	"github.com/voxset/voxset/internal/vsdb"
)

// seed fixes the synthetic corpus across runs and checkouts.
const seed = 0x5eed6

// Doc is the emitted JSON document.
type Doc struct {
	Schema string `json:"schema"` // "voxset-bench/1"
	PR     int    `json:"pr"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	CPUs   int    `json:"cpus"`

	Config ConfigDoc  `json:"config"`
	Ingest IngestDoc  `json:"ingest"`
	KNN    KNNDoc     `json:"knn"`
	Allocs AllocsDoc  `json:"allocs"`
	Batch  *BatchDoc  `json:"batch,omitempty"`
	Mmap   *MmapDoc   `json:"mmap,omitempty"`
	Approx *ApproxDoc `json:"approx,omitempty"`
	Shards []ShardDoc `json:"shards"`
	// Replication measures the per-shard replica tier (absent when the
	// checkout predates it).
	Replication *ReplicationDoc `json:"replication,omitempty"`
	// Degraded measures scan-to-CAD retrieval from damaged rescans
	// (absent when the checkout predates the degrade generators).
	Degraded *DegradedDoc `json:"degraded,omitempty"`
	Baseline *Doc         `json:"baseline,omitempty"`
}

// ConfigDoc records the workload shape the numbers were measured under.
type ConfigDoc struct {
	Objects int `json:"objects"`
	Dim     int `json:"dim"`
	MaxCard int `json:"max_card"`
	Queries int `json:"queries"`
	K       int `json:"k"`
	Rounds  int `json:"rounds"`
}

// IngestDoc is the bulk-load measurement: one vsdb.BulkInsert of the
// whole corpus (centroids, STR bulk load, record serialization).
type IngestDoc struct {
	MSPerObject float64 `json:"ms_per_object"`
	TotalMS     float64 `json:"total_ms"`
}

// KNNDoc is the exact k-nn latency distribution over the query set.
type KNNDoc struct {
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// AllocsDoc pins the hot-path allocation counts.
type AllocsDoc struct {
	MatchingPerOp float64 `json:"matching_per_op"`
	KNNPerQuery   float64 `json:"knn_per_query"`
	DecodePerSet  float64 `json:"decode_per_set"`
}

// BatchDoc compares the batched query path against N sequential calls
// on the same corpus (absent when the checkout predates KNNBatch).
type BatchDoc struct {
	SequentialQPS float64 `json:"sequential_qps"`
	BatchQPS      float64 `json:"batch_qps"`
	Speedup       float64 `json:"speedup"`
}

// MmapDoc measures the VXSNAP02 zero-copy serving path: cold open of a
// paged snapshot (no decode, lazy CRCs), the per-set allocation count of
// reads that alias the mapping, and exact k-nn latency over the mapped
// base (absent when the checkout predates the paged layout).
type MmapDoc struct {
	OpenMS         float64 `json:"open_ms"`
	AtAllocsPerSet float64 `json:"at_allocs_per_set"`
	KNNP50MS       float64 `json:"knn_p50_ms"`
}

// ApproxDoc measures the approximate sketch candidate tier (DESIGN.md
// §12) on its own larger corpus: exact vs approximate k-nn p50, the
// recall@k of the approximate answers against the exact oracle, the
// candidate volume the tier refines, and the speed-vs-recall curve over
// candidate budget factors (absent when the checkout predates the tier).
type ApproxDoc struct {
	Objects            int              `json:"objects"`
	K                  int              `json:"k"`
	Bits               int              `json:"bits"`
	Active             int              `json:"active"`
	ExactP50MS         float64          `json:"exact_p50_ms"`
	ApproxP50MS        float64          `json:"approx_p50_ms"`
	Speedup            float64          `json:"speedup"`
	RecallAt10         float64          `json:"recall_at_10"`
	CandidatesPerQuery float64          `json:"candidates_per_query"`
	Curve              []ApproxPointDoc `json:"curve"`
}

// ApproxPointDoc is one point of the speed-vs-recall curve: the tier at
// one candidate budget factor (budget = max(k·factor, MinCandidates)).
type ApproxPointDoc struct {
	KNNFactor          int     `json:"knn_factor"`
	RecallAt10         float64 `json:"recall_at_10"`
	ApproxP50MS        float64 `json:"approx_p50_ms"`
	Speedup            float64 `json:"speedup"`
	CandidatesPerQuery float64 `json:"candidates_per_query"`
}

// ReplicationDoc measures the per-shard replica tier (DESIGN.md §13) on
// a replicated cluster over the main corpus: k-nn p50 with follower
// reads on (queries round-robin across primary and caught-up
// followers), the time from killing a primary to a promoted follower
// serving (mean across shards), and the mean shipping lag sampled
// behind a sustained insert stream (records a follower trails the
// primary's epoch by; 0 means shipping keeps pace with acknowledgement).
type ReplicationDoc struct {
	Replicas          int     `json:"replicas"`
	FollowerReadP50MS float64 `json:"follower_read_p50_ms"`
	PromotionMS       float64 `json:"promotion_ms"`
	SteadyLagRecords  float64 `json:"steady_lag_records"`
}

// ShardDoc is one row of the scatter-gather scaling measurement.
type ShardDoc struct {
	Shards int     `json:"shards"`
	P50MS  float64 `json:"knn_p50_ms"`
}

func main() {
	var (
		pr       = flag.Int("pr", 6, "PR number stamped into the document")
		out      = flag.String("out", "", "output path (default stdout)")
		quick    = flag.Bool("quick", false, "small corpus / few rounds (CI smoke)")
		baseline = flag.String("baseline", "", "path of a previous run to embed under \"baseline\"")
	)
	flag.Parse()

	cfg := ConfigDoc{Objects: 4096, Dim: 6, MaxCard: 7, Queries: 32, K: 10, Rounds: 5}
	if *quick {
		cfg = ConfigDoc{Objects: 512, Dim: 6, MaxCard: 7, Queries: 8, K: 10, Rounds: 2}
	}

	doc := run(cfg, *quick)
	doc.Schema = "voxset-bench/1"
	doc.PR = *pr
	doc.Date = time.Now().UTC().Format(time.RFC3339)
	doc.Go = runtime.Version()
	doc.CPUs = runtime.NumCPU()

	if *baseline != "" {
		prev, err := readDoc(*baseline)
		if err != nil {
			fatal("reading baseline: %v", err)
		}
		prev.Baseline = nil // one level of history is enough
		doc.Baseline = prev
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}

	// Self-check: decode what was emitted and validate the schema, so a
	// harness that stops measuring cannot silently produce an empty file.
	var back Doc
	if err := json.Unmarshal(buf, &back); err != nil {
		fatal("schema: emitted document does not decode: %v", err)
	}
	if err := validate(&back); err != nil {
		fatal("schema: %v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func readDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// validate enforces the schema contract bench-smoke relies on.
func validate(d *Doc) error {
	switch {
	case d.Schema != "voxset-bench/1":
		return fmt.Errorf("schema field %q", d.Schema)
	case d.Config.Objects <= 0 || d.Config.Dim <= 0 || d.Config.MaxCard <= 0:
		return fmt.Errorf("empty config")
	case d.Ingest.MSPerObject <= 0:
		return fmt.Errorf("ingest not measured")
	case d.KNN.P50MS <= 0 || d.KNN.P99MS < d.KNN.P50MS:
		return fmt.Errorf("knn percentiles implausible (p50=%v p99=%v)", d.KNN.P50MS, d.KNN.P99MS)
	case len(d.Shards) == 0:
		return fmt.Errorf("shard scaling not measured")
	case d.Approx == nil:
		return fmt.Errorf("approximate tier not measured")
	case d.Approx.RecallAt10 <= 0 || d.Approx.RecallAt10 > 1:
		return fmt.Errorf("approx recall@10 implausible (%v)", d.Approx.RecallAt10)
	case d.Approx.ApproxP50MS <= 0 || d.Approx.ExactP50MS <= 0:
		return fmt.Errorf("approx latencies not measured")
	case len(d.Approx.Curve) == 0:
		return fmt.Errorf("approx speed-vs-recall curve not measured")
	case d.Replication == nil:
		return fmt.Errorf("replication tier not measured")
	case d.Replication.FollowerReadP50MS <= 0 || d.Replication.PromotionMS <= 0:
		return fmt.Errorf("replication latencies implausible (read p50=%v promotion=%v)",
			d.Replication.FollowerReadP50MS, d.Replication.PromotionMS)
	case d.Degraded == nil:
		return fmt.Errorf("degraded retrieval not measured")
	case d.Degraded.Parts <= 0 || len(d.Degraded.Rows) == 0:
		return fmt.Errorf("degraded section empty (parts=%d rows=%d)", d.Degraded.Parts, len(d.Degraded.Rows))
	}
	for _, row := range d.Degraded.Rows {
		if row.Kind == "" || row.RecallFullAt10 < 0 || row.RecallFullAt10 > 1 ||
			row.RecallPartialAt10 < 0 || row.RecallPartialAt10 > 1 {
			return fmt.Errorf("degraded row implausible: %+v", row)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Corpus

// corpus builds the deterministic synthetic object set: cardinalities
// cycle 1..MaxCard, components are uniform in [0, 10) — the value range
// of normalized cover features.
func corpus(cfg ConfigDoc) (ids []uint64, sets [][][]float64, queries [][][]float64) {
	rng := rand.New(rand.NewSource(seed))
	makeSet := func() [][]float64 {
		card := 1 + rng.Intn(cfg.MaxCard)
		set := make([][]float64, card)
		for i := range set {
			v := make([]float64, cfg.Dim)
			for j := range v {
				v[j] = rng.Float64() * 10
			}
			set[i] = v
		}
		return set
	}
	ids = make([]uint64, cfg.Objects)
	sets = make([][][]float64, cfg.Objects)
	for i := range sets {
		ids[i] = uint64(i + 1)
		sets[i] = makeSet()
	}
	queries = make([][][]float64, cfg.Queries)
	for i := range queries {
		queries[i] = makeSet()
	}
	return ids, sets, queries
}

// familyCorpus builds the corpus the approximate tier is measured on:
// part families, as in the paper's CAD catalogs — each family is a
// prototype set with uniform components in [0, 10), and members jitter
// every component with Gaussian noise. A query's true neighbors are its
// family, which is the neighborhood structure similarity search exists
// to exploit; on the structureless uniform corpus above, the exact
// top-k is barely closer than random objects and recall@k would
// measure noise rather than the tier.
func familyCorpus(cfg ConfigDoc) (ids []uint64, sets [][][]float64, queries [][][]float64) {
	const jitter = 1.2
	rng := rand.New(rand.NewSource(seed))
	families := make([][][]float64, cfg.Objects/100+1)
	for f := range families {
		card := 1 + rng.Intn(cfg.MaxCard)
		set := make([][]float64, card)
		for i := range set {
			v := make([]float64, cfg.Dim)
			for j := range v {
				v[j] = rng.Float64() * 10
			}
			set[i] = v
		}
		families[f] = set
	}
	sample := func() [][]float64 {
		base := families[rng.Intn(len(families))]
		set := make([][]float64, len(base))
		for i, bv := range base {
			v := make([]float64, cfg.Dim)
			for j := range v {
				v[j] = bv[j] + rng.NormFloat64()*jitter
			}
			set[i] = v
		}
		return set
	}
	ids = make([]uint64, cfg.Objects)
	sets = make([][][]float64, cfg.Objects)
	for i := range sets {
		ids[i] = uint64(i + 1)
		sets[i] = sample()
	}
	queries = make([][][]float64, cfg.Queries)
	for i := range queries {
		queries[i] = sample()
	}
	return ids, sets, queries
}

func openDB(cfg ConfigDoc) *vsdb.DB {
	db, err := vsdb.Open(vsdb.Config{Dim: cfg.Dim, MaxCard: cfg.MaxCard, Workers: 1})
	if err != nil {
		fatal("open: %v", err)
	}
	return db
}

// ---------------------------------------------------------------------------
// Measurements

func run(cfg ConfigDoc, quick bool) *Doc {
	ids, sets, queries := corpus(cfg)
	doc := &Doc{Config: cfg}

	// Ingest: best of Rounds bulk loads into a fresh database (best-of
	// suppresses GC noise; the loaded database of the last round serves
	// the query measurements).
	var db *vsdb.DB
	best := time.Duration(1<<62 - 1)
	for r := 0; r < cfg.Rounds; r++ {
		db = openDB(cfg)
		start := time.Now()
		if err := db.BulkInsert(ids, sets); err != nil {
			fatal("bulk insert: %v", err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	doc.Ingest = IngestDoc{
		MSPerObject: ms(best) / float64(cfg.Objects),
		TotalMS:     ms(best),
	}

	// KNN latency distribution: every query measured Rounds times, after
	// one untimed warmup pass.
	for _, q := range queries {
		db.KNN(q, cfg.K)
	}
	var lats []float64
	for r := 0; r < cfg.Rounds; r++ {
		for _, q := range queries {
			start := time.Now()
			db.KNN(q, cfg.K)
			lats = append(lats, ms(time.Since(start)))
		}
	}
	doc.KNN = KNNDoc{
		P50MS:  percentile(lats, 0.50),
		P99MS:  percentile(lats, 0.99),
		MeanMS: mean(lats),
	}

	// Allocations: the matching kernel on a held workspace, one full k-nn
	// query, and one vector-set record decode.
	ws := dist.GetWorkspace()
	x, y := sets[0], sets[1%len(sets)]
	doc.Allocs.MatchingPerOp = testing.AllocsPerRun(100, func() {
		ws.MatchingDistance(x, y, dist.L2, dist.WeightNorm)
	})
	dist.PutWorkspace(ws)
	q := queries[0]
	doc.Allocs.KNNPerQuery = testing.AllocsPerRun(10, func() { db.KNN(q, cfg.K) })
	doc.Allocs.DecodePerSet = decodeAllocs(cfg)

	// Batched query path vs the same queries issued sequentially.
	doc.Batch = measureBatch(db, queries, cfg)

	// VXSNAP02 serving path: cold open, aliasing reads, mapped k-nn.
	doc.Mmap = measureMmap(db, queries, cfg)

	// Approximate sketch tier: recall and speedup on a larger corpus.
	doc.Approx = measureApprox(cfg, quick)

	// Replica tier: follower-read latency, promotion time, shipping lag.
	doc.Replication = measureReplication(ids, sets, queries, cfg)

	// Scan-to-CAD retrieval: recall from damaged rescans, full vs partial.
	doc.Degraded = measureDegraded(quick)

	// Shard scaling: scatter-gather k-nn p50 at 1 and 4 shards.
	for _, n := range []int{1, 4} {
		c, err := cluster.New(cluster.Config{
			Shards: n, Dim: cfg.Dim, MaxCard: cfg.MaxCard, Workers: 1,
		})
		if err != nil {
			fatal("cluster: %v", err)
		}
		if err := c.BulkInsert(ids, sets); err != nil {
			fatal("cluster bulk insert: %v", err)
		}
		for _, q := range queries {
			if _, err := c.KNN(q, cfg.K); err != nil {
				fatal("cluster knn: %v", err)
			}
		}
		var sl []float64
		for r := 0; r < cfg.Rounds; r++ {
			for _, q := range queries {
				start := time.Now()
				if _, err := c.KNN(q, cfg.K); err != nil {
					fatal("cluster knn: %v", err)
				}
				sl = append(sl, ms(time.Since(start)))
			}
		}
		doc.Shards = append(doc.Shards, ShardDoc{Shards: n, P50MS: percentile(sl, 0.50)})
	}
	return doc
}

// decodeAllocs measures the decode path vsdb actually uses on load —
// the streaming Decoder.NextFlat, one flat buffer per object — not the
// retired per-vector Set.ReadFrom (which this gauge exercised through
// PR 6, reporting 5 allocs/set for a decoder the hot path no longer
// runs).
func decodeAllocs(cfg ConfigDoc) float64 {
	const objects = 256
	rng := rand.New(rand.NewSource(seed + 1))
	sdb := &snapshot.DB{Dim: cfg.Dim, MaxCard: cfg.MaxCard, Omega: make([]float64, cfg.Dim)}
	for i := 0; i < objects; i++ {
		set := make([][]float64, cfg.MaxCard)
		for j := range set {
			set[j] = make([]float64, cfg.Dim)
			for k := range set[j] {
				set[j][k] = rng.Float64() * 10
			}
		}
		sdb.IDs = append(sdb.IDs, uint64(i+1))
		sdb.Sets = append(sdb.Sets, set)
	}
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, sdb); err != nil {
		fatal("encode: %v", err)
	}
	d, err := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()), snapshot.DecodeOptions{})
	if err != nil {
		fatal("decoder: %v", err)
	}
	return testing.AllocsPerRun(objects/2, func() {
		if _, _, err := d.NextFlat(); err != nil {
			fatal("decode: %v", err)
		}
	})
}

// mmapSink keeps the aliasing reads from being optimized away.
var mmapSink float64

// measureMmap converts the loaded corpus to a VXSNAP02 paged snapshot
// and measures the zero-copy serving path against it.
func measureMmap(db *vsdb.DB, queries [][][]float64, cfg ConfigDoc) *MmapDoc {
	dir, err := os.MkdirTemp("", "voxset-bench-mmap")
	if err != nil {
		fatal("mmap tmp: %v", err)
	}
	defer os.RemoveAll(dir)
	v1 := filepath.Join(dir, "corpus.vsnap")
	v2 := filepath.Join(dir, "corpus.v2.vsnap")
	if err := db.SaveFile(v1); err != nil {
		fatal("mmap save: %v", err)
	}
	if err := snapshot.ConvertFile(v1, v2, 0); err != nil {
		fatal("mmap convert: %v", err)
	}

	m := &MmapDoc{}

	// Cold open: sniff + map + header/offsets validation, no decode.
	best := time.Duration(1<<62 - 1)
	for r := 0; r < cfg.Rounds; r++ {
		start := time.Now()
		mdb, err := vsdb.OpenFile(v2, vsdb.LoadOptions{Workers: 1})
		if err != nil {
			fatal("mmap open: %v", err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		mdb.Close()
	}
	m.OpenMS = ms(best)

	// Aliasing reads: At returns a Flat view into the mapping.
	r, err := snapshot.OpenPaged(v2, snapshot.PagedReaderOptions{})
	if err != nil {
		fatal("mmap reader: %v", err)
	}
	i := 0
	m.AtAllocsPerSet = testing.AllocsPerRun(100, func() {
		f := r.At(i % r.Len())
		mmapSink += f.Data[0]
		i++
	})
	r.Close()

	// Exact k-nn over the mapped base.
	mdb, err := vsdb.OpenFile(v2, vsdb.LoadOptions{Workers: 1})
	if err != nil {
		fatal("mmap open: %v", err)
	}
	defer mdb.Close()
	for _, q := range queries {
		mdb.KNN(q, cfg.K)
	}
	var lats []float64
	for rd := 0; rd < cfg.Rounds; rd++ {
		for _, q := range queries {
			start := time.Now()
			mdb.KNN(q, cfg.K)
			lats = append(lats, ms(time.Since(start)))
		}
	}
	m.KNNP50MS = percentile(lats, 0.50)
	return m
}

// measureApprox builds a larger family-structured corpus (the exact
// scan cost at the main corpus size is too small for the tier to
// matter, and the tier's job is finding real neighborhoods — see
// familyCorpus), persists it once as a paged snapshot with the sketch
// table in its tail, and reopens it at each candidate budget factor —
// every point of the curve adopts the same persisted sketches, so only
// the query path varies. Recall and latency come from the
// internal/recall harness: the same queries run through both engines
// side by side.
func measureApprox(cfg ConfigDoc, quick bool) *ApproxDoc {
	objects := 100_000
	rounds := 3
	if quick {
		objects, rounds = 4000, 1
	}
	acfg := cfg
	acfg.Objects = objects
	ids, sets, queries := familyCorpus(acfg)

	db, err := vsdb.Open(vsdb.Config{
		Dim: cfg.Dim, MaxCard: cfg.MaxCard, Workers: 1, Approx: &vsdb.ApproxOptions{},
	})
	if err != nil {
		fatal("approx open: %v", err)
	}
	if err := db.BulkInsert(ids, sets); err != nil {
		fatal("approx bulk insert: %v", err)
	}
	dir, err := os.MkdirTemp("", "voxset-bench-approx")
	if err != nil {
		fatal("approx tmp: %v", err)
	}
	defer os.RemoveAll(dir)
	v1 := filepath.Join(dir, "approx.vsnap")
	v2 := filepath.Join(dir, "approx.v2.vsnap")
	if err := db.SaveFile(v1); err != nil {
		fatal("approx save: %v", err)
	}
	if err := snapshot.ConvertFile(v1, v2, 0); err != nil {
		fatal("approx convert: %v", err)
	}

	p := sketch.DefaultParams()
	out := &ApproxDoc{Objects: objects, K: cfg.K, Bits: p.Bits, Active: p.Active}

	// One query stream, each query measured `rounds` times.
	qs := make([][][]float64, 0, len(queries)*rounds)
	for r := 0; r < rounds; r++ {
		qs = append(qs, queries...)
	}
	for _, factor := range []int{8, 16, 32, 64} {
		opt := vsdb.ApproxOptions{KNNFactor: factor}
		mdb, err := vsdb.OpenFile(v2, vsdb.LoadOptions{Workers: 1, Approx: &opt})
		if err != nil {
			fatal("approx reopen: %v", err)
		}
		for _, q := range queries { // warmup: page-in + lazy structures
			mdb.KNNApprox(q, cfg.K)
			mdb.KNN(q, cfg.K)
		}
		rep := recall.EvalKNN(qs, cfg.K,
			func(q [][]float64, k int) []vsdb.Neighbor { return mdb.KNNApprox(q, k) },
			func(q [][]float64, k int) []vsdb.Neighbor { return mdb.KNN(q, k) },
			mdb.SketchCandidates)
		pt := ApproxPointDoc{
			KNNFactor:          factor,
			RecallAt10:         rep.MeanRecall,
			ApproxP50MS:        ms(rep.ApproxP50),
			Speedup:            rep.Speedup,
			CandidatesPerQuery: rep.CandidatesPerQuery,
		}
		out.Curve = append(out.Curve, pt)
		if factor == vsdb.DefaultKNNFactor {
			out.ExactP50MS = ms(rep.ExactP50)
			out.ApproxP50MS = pt.ApproxP50MS
			out.Speedup = pt.Speedup
			out.RecallAt10 = pt.RecallAt10
			out.CandidatesPerQuery = pt.CandidatesPerQuery
		}
		mdb.Close()
	}
	return out
}

// measureReplication serves the main corpus from a replicated cluster
// (2 shards × 2 followers, per-shard WALs in a temp directory) and
// measures the three gauges the replica tier is judged by: read latency
// when queries may land on followers, how long a failover promotion
// takes, and how far shipping trails acknowledgement under a sustained
// insert stream.
func measureReplication(ids []uint64, sets [][][]float64, queries [][][]float64, cfg ConfigDoc) *ReplicationDoc {
	const replicas = 2
	dir, err := os.MkdirTemp("", "voxset-bench-repl")
	if err != nil {
		fatal("replication tmp: %v", err)
	}
	defer os.RemoveAll(dir)
	c, err := cluster.New(cluster.Config{
		Shards: 2, Dim: cfg.Dim, MaxCard: cfg.MaxCard, Workers: 1,
		WALDir: dir, WALNoSync: true,
		Replicas: replicas, FollowerReads: true,
	})
	if err != nil {
		fatal("replication cluster: %v", err)
	}
	defer c.Close()
	if err := c.BulkInsert(ids, sets); err != nil {
		fatal("replication bulk insert: %v", err)
	}
	// Drain the bulk-load backlog first — steady state means the stream
	// below, not the one-off load.
	if err := c.WaitReplicaSync(30 * time.Second); err != nil {
		fatal("replication sync: %v", err)
	}

	out := &ReplicationDoc{Replicas: replicas}

	// Steady-state lag: sample the worst follower lag behind each insert
	// of a sustained stream (fresh ids beyond the corpus).
	next := uint64(len(ids) + 1)
	var lagSum float64
	lagN := 0
	for r := 0; r < cfg.Rounds; r++ {
		for i := 0; i < 64; i++ {
			if err := c.Insert(next, sets[i%len(sets)]); err != nil {
				fatal("replication insert: %v", err)
			}
			next++
			lagSum += float64(c.MaxReplicaLag())
			lagN++
		}
	}
	out.SteadyLagRecords = lagSum / float64(lagN)
	if err := c.WaitReplicaSync(30 * time.Second); err != nil {
		fatal("replication sync: %v", err)
	}

	// Follower-read p50: the same k-nn battery as the main measurement,
	// free to land on any caught-up replica.
	for _, q := range queries {
		if _, err := c.KNN(q, cfg.K); err != nil {
			fatal("replication knn: %v", err)
		}
	}
	var lats []float64
	for r := 0; r < cfg.Rounds; r++ {
		for _, q := range queries {
			start := time.Now()
			if _, err := c.KNN(q, cfg.K); err != nil {
				fatal("replication knn: %v", err)
			}
			lats = append(lats, ms(time.Since(start)))
		}
	}
	out.FollowerReadP50MS = percentile(lats, 0.50)

	// Promotion time: kill each shard's primary and time the failover —
	// Kill returns once the most-caught-up follower owns the shard WAL
	// and serves.
	var promo float64
	for i := 0; i < c.N(); i++ {
		start := time.Now()
		if err := c.Kill(i); err != nil {
			fatal("replication kill: %v", err)
		}
		promo += ms(time.Since(start))
	}
	out.PromotionMS = promo / float64(c.N())
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
