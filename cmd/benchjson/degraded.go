package main

import (
	"github.com/voxset/voxset/internal/cadgen"
	"github.com/voxset/voxset/internal/degrade"
	"github.com/voxset/voxset/internal/recall"
	"github.com/voxset/voxset/internal/vsdb"
)

// DegradedDoc measures scan-to-CAD retrieval (DESIGN.md §14): a catalog
// of synthetic aircraft parts is queried by damaged rescans of those
// same parts — cropped, noisy, patch-dropped and low-resolution scans —
// and each row reports how often the true part surfaced in the top-k
// under the full minimal-matching distance versus partial matching on
// the best i sub-vectors.
type DegradedDoc struct {
	Parts    int              `json:"parts"`
	K        int              `json:"k"`
	Covers   int              `json:"covers"`
	PartialI int              `json:"partial_i"`
	Rows     []DegradedRowDoc `json:"rows"`
}

// DegradedRowDoc is one damage kind × severity cell.
type DegradedRowDoc struct {
	Kind              string  `json:"kind"`
	Severity          float64 `json:"severity"`
	RecallFullAt10    float64 `json:"recall_full_at_10"`
	RecallPartialAt10 float64 `json:"recall_partial_at_10"`
}

// measureDegraded builds the part catalog (normalized cover-resolution
// scans at r=15, 7-cover vector sets — the same extraction the serving
// pipeline uses) and sweeps every degrade.Kind over the severity list.
func measureDegraded(quick bool) *DegradedDoc {
	const (
		r        = 15
		covers   = 7
		k        = 10
		partialI = 4
	)
	nParts, severities := 96, []float64{0.1, 0.25}
	if quick {
		nParts, severities = 32, []float64{0.1}
	}
	parts := cadgen.AircraftDataset(seed, nParts)
	cat := recall.BuildCatalog(parts, r, covers)
	if len(cat.IDs) == 0 {
		fatal("degraded: catalog extracted empty")
	}
	db, err := vsdb.Open(vsdb.Config{Dim: 6, MaxCard: covers})
	if err != nil {
		fatal("degraded: %v", err)
	}
	defer db.Close()
	if err := db.BulkInsert(cat.IDs, cat.Sets); err != nil {
		fatal("degraded bulk insert: %v", err)
	}

	out := &DegradedDoc{Parts: len(cat.IDs), K: k, Covers: covers, PartialI: partialI}
	for _, kind := range degrade.Kinds {
		for _, sev := range severities {
			queries := recall.DegradedQueries(cat, covers, degrade.Params{Kind: kind, Severity: sev, Seed: seed})
			full := recall.TruePartRecall(cat, queries, k, db.KNN)
			partial := recall.TruePartRecall(cat, queries, k, func(q [][]float64, kk int) []vsdb.Neighbor {
				return db.KNNSet(q, kk, vsdb.SetQuery{Partial: true, I: partialI})
			})
			out.Rows = append(out.Rows, DegradedRowDoc{
				Kind:              kind.String(),
				Severity:          sev,
				RecallFullAt10:    full,
				RecallPartialAt10: partial,
			})
		}
	}
	return out
}
