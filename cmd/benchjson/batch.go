package main

import (
	"time"

	"github.com/voxset/voxset/internal/vsdb"
)

// measureBatch compares vsdb.KNNBatch against the same queries issued
// as N sequential KNN calls, reporting sustained queries/second for
// both over cfg.Rounds passes.
func measureBatch(db *vsdb.DB, queries [][][]float64, cfg ConfigDoc) *BatchDoc {
	if len(queries) == 0 {
		return nil
	}
	seq := time.Duration(1<<62 - 1)
	for r := 0; r < cfg.Rounds; r++ {
		start := time.Now()
		for _, q := range queries {
			db.KNN(q, cfg.K)
		}
		if d := time.Since(start); d < seq {
			seq = d
		}
	}
	db.KNNBatch(queries, cfg.K) // warmup
	batch := time.Duration(1<<62 - 1)
	for r := 0; r < cfg.Rounds; r++ {
		start := time.Now()
		db.KNNBatch(queries, cfg.K)
		if d := time.Since(start); d < batch {
			batch = d
		}
	}
	doc := &BatchDoc{
		SequentialQPS: float64(len(queries)) / seq.Seconds(),
		BatchQPS:      float64(len(queries)) / batch.Seconds(),
	}
	if batch > 0 {
		doc.Speedup = doc.BatchQPS / doc.SequentialQPS
	}
	return doc
}
