// Command voxoptics reproduces the paper's reachability-plot experiments
// (Figures 6–10): it runs OPTICS over a dataset under a chosen similarity
// model, renders the reachability plot as ASCII art, writes it as CSV,
// scores the ε-cut clustering against the generator's part families, and
// optionally prints the class composition of every discovered cluster
// (Figure 10).
//
// Usage:
//
//	voxoptics -figure 9c
//	voxoptics -dataset car -model vectorset -covers 7 -minpts 5 -classes
//	voxoptics -dataset aircraft -n 800 -model volume -csv fig6b.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/experiments"
	"github.com/voxset/voxset/internal/optics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxoptics: ")
	var (
		figure  = flag.String("figure", "", "paper figure panel id (6a..9d); overrides -dataset/-model/-covers")
		dataset = flag.String("dataset", "car", "dataset: car | aircraft")
		model   = flag.String("model", "vectorset", "model: volume | solidangle | coverseq | permseq | vectorset")
		covers  = flag.Int("covers", 7, "cover budget k")
		minPts  = flag.Int("minpts", 5, "OPTICS MinPts")
		n       = flag.Int("n", 800, "aircraft dataset size (car is always ≈200)")
		seed    = flag.Int64("seed", 42, "dataset seed")
		inv     = flag.String("inv", "full", "invariance: none | rot | full")
		rHist   = flag.Int("rhist", 30, "histogram voxel resolution")
		rCover  = flag.Int("rcover", 15, "cover voxel resolution")
		p       = flag.Int("p", 5, "histogram partitions per dimension")
		csvPath = flag.String("csv", "", "write the reachability plot as CSV to this file")
		classes = flag.Bool("classes", false, "print per-cluster class composition (Figure 10)")
		tree    = flag.Bool("tree", false, "print the hierarchical cluster tree with majority classes")
		width   = flag.Int("width", 100, "ASCII plot width")
		height  = flag.Int("height", 16, "ASCII plot height")
	)
	flag.Parse()

	spec := experiments.FigureSpec{ID: "custom", MinPts: *minPts, Covers: *covers}
	if *figure != "" {
		found := false
		for _, s := range experiments.Figures() {
			if s.ID == *figure {
				spec = s
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("unknown figure %q (want one of 6a..9d)", *figure)
		}
	} else {
		m, err := core.ParseModel(*model)
		if err != nil {
			log.Fatal(err)
		}
		spec.Model = m
		switch *dataset {
		case "car":
			spec.Dataset = experiments.Car
		case "aircraft":
			spec.Dataset = experiments.Aircraft
		default:
			log.Fatalf("unknown dataset %q", *dataset)
		}
	}

	var invariance core.Invariance
	switch *inv {
	case "none":
		invariance = core.InvNone
	case "rot":
		invariance = core.InvRotation90
	case "full":
		invariance = core.InvRotoReflection
	default:
		log.Fatalf("unknown invariance %q", *inv)
	}

	parts := spec.Dataset.Parts(*seed, *n)
	cfg := core.Config{RHist: *rHist, RCover: *rCover, P: *p, KernelRadius: 3, Covers: *covers}
	log.Printf("figure %s: %s dataset (%d parts), model %v, k=%d, MinPts=%d, invariance=%s",
		spec.ID, spec.Dataset, len(parts), spec.Model, spec.Covers, spec.MinPts, *inv)

	res, err := experiments.RunFigure(spec, parts, cfg, invariance)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(optics.RenderASCII(res.Ordering, *width, *height))
	fmt.Printf("distance calls: %d\n", res.Ordering.DistanceCalls)
	fmt.Printf("best ε-cut: %d clusters, purity %.3f, adjusted Rand index %.3f (ε = %.3g)\n",
		res.BestClusters, res.BestPurity, res.BestARI, res.BestCutEps)

	if *classes {
		fmt.Println("\ncluster composition (Figure 10):")
		for _, s := range experiments.Figure10(res, parts) {
			fmt.Printf("  cluster %d (%d parts, %.0f%% %s): %v\n",
				s.Cluster, s.Size, 100*s.Purity, s.Majority, s.Composition)
		}
	}

	if *tree {
		fmt.Println("\nhierarchical cluster tree:")
		forest := optics.HierarchicalClusters(res.Ordering, *minPts)
		fmt.Print(optics.RenderTree(forest, res.Ordering, func(objs []int) string {
			counts := map[string]int{}
			for _, o := range objs {
				counts[parts[o].Class]++
			}
			best, bestN, total := "", 0, 0
			for c, n := range counts {
				total += n
				if n > bestN {
					best, bestN = c, n
				}
			}
			return fmt.Sprintf("%d%% %s", 100*bestN/total, best)
		}))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := optics.WriteCSV(f, res.Ordering); err != nil {
			log.Fatal(err)
		}
		log.Printf("reachability CSV written to %s", *csvPath)
	}
}
