// Command voxclassify measures leave-one-out 1-nn classification accuracy
// of the similarity models against the generator part families — a second
// objective effectiveness measure complementing the paper's OPTICS plots
// (§5.2 argues evaluations must cover the whole dataset, not sample
// queries; leave-one-out does exactly that).
//
// Usage:
//
//	voxclassify -dataset car
//	voxclassify -dataset aircraft -n 500 -inv rot
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxclassify: ")
	var (
		dataset = flag.String("dataset", "car", "dataset: car | aircraft")
		n       = flag.Int("n", 500, "aircraft dataset size")
		seed    = flag.Int64("seed", 42, "dataset seed")
		covers  = flag.Int("covers", 7, "cover budget k")
		inv     = flag.String("inv", "full", "invariance: none | rot | full")
		rHist   = flag.Int("rhist", 30, "histogram voxel resolution")
		p       = flag.Int("p", 5, "histogram partitions per dimension")
	)
	flag.Parse()

	ds := experiments.Car
	if *dataset == "aircraft" {
		ds = experiments.Aircraft
	}
	var invariance core.Invariance
	switch *inv {
	case "none":
		invariance = core.InvNone
	case "rot":
		invariance = core.InvRotation90
	case "full":
		invariance = core.InvRotoReflection
	default:
		log.Fatalf("unknown invariance %q", *inv)
	}

	parts := ds.Parts(*seed, *n)
	log.Printf("extracting %d %s parts…", len(parts), ds)
	cfg := core.Config{RHist: *rHist, RCover: 15, P: *p, KernelRadius: 3, Covers: *covers}
	e, err := experiments.BuildEngine(cfg, parts)
	if err != nil {
		log.Fatal(err)
	}

	models := []core.Model{
		core.ModelVolume, core.ModelSolidAngle,
		core.ModelCoverSeq, core.ModelCoverSeqPerm, core.ModelVectorSet,
	}
	log.Printf("leave-one-out 1-nn classification, invariance=%s…", *inv)
	rows := experiments.Classification1NN(e, models, invariance)
	fmt.Println("\n1-nn classification accuracy by similarity model")
	fmt.Print(experiments.FormatClassify(rows))
}
