// Command voxserve serves a vector set database over HTTP (DESIGN.md §7):
// k-nn and ε-range queries under the minimal matching distance, answered
// by the extended-centroid filter pipeline on a bounded worker pool, with
// an LRU cache for repeated query objects and a /metrics endpoint
// exposing latency histograms, filter selectivity and the simulated page
// I/O of the paper's §5.4 cost model.
//
// Usage:
//
//	voxserve -snapshot db.vsnap                          # serve a snapshot
//	voxserve -dataset car -covers 7 -save db.vsnap       # build, save, serve
//	voxserve -snapshot db.vsnap -wal db.wal              # live updates, durable
//	curl -s localhost:8080/knn -d '{"id": 3, "k": 5}'
//	curl -s localhost:8080/knn/batch -d '{"queries": [{"id": 3, "k": 5}, {"id": 4, "k": 5}]}'
//	curl -s localhost:8080/range -d '{"set": [[...]], "eps": 1.5}'
//	curl -s 'localhost:8080/query/mesh?k=5' --data-binary @part.stl
//	curl -s 'localhost:8080/query/mesh?k=5&dist=partial&i=4' --data-binary @scan.stl
//	curl -s localhost:8080/insert -d '{"id": 900, "set": [[...]]}'
//	curl -s localhost:8080/metrics
//
// /query/mesh is query-by-upload (DESIGN.md §14): the raw STL body is
// voxelized, normalized and reduced to its cover vector set server-side,
// then searched like any /knn or /range query. dist=partial ranks by the
// §4.1 partial matching distance (best i sub-vectors), the right mode
// for cropped or damaged scans; -max-mesh-mb caps the upload size.
//
// With -wal the database accepts live /insert, /delete and /compact
// requests (DESIGN.md §8): every mutation is appended to the write-ahead
// log before it becomes visible, and on restart the snapshot plus the
// log suffix reproduce the exact pre-crash state. -checkpoint rewrites
// the snapshot periodically and truncates the log.
//
// With -shards N the same routes serve a hash-sharded cluster (DESIGN.md
// §9): queries scatter-gather across N vsdb shards with bit-identical
// results, mutations route to the owning shard, /cluster reports the
// shard topology and /metrics gains per-shard gauges. -partial returns
// degraded (flagged) results when a shard fails instead of erroring;
// -wal-dir gives every shard its own durable log:
//
//	voxserve -dataset car -covers 7 -shards 4                # sharded build
//	voxserve -snapshot db.vsnap -shards 4 -partial           # scatter a snapshot
//	voxserve -dataset car -shards 4 -wal-dir ./wals          # durable shards
//	voxserve -snapshot-dir ./shards                          # voxgen -stream output
//	curl -s localhost:8080/cluster
//
// With -replicas R (needs -shards and -wal-dir) every shard becomes a
// replica set of R+1 members (DESIGN.md §13): the primary appends to the
// shard WAL and ships each acknowledged record to R followers, which
// replay it into standby databases. -follower-reads routes read-only
// requests round-robin across the primary and every caught-up follower
// (staleness bound -max-lag, in records; results are byte-identical
// regardless of which replica answers). When a primary dies the
// most-caught-up follower is promoted, stale-primary traffic is fenced
// by term numbers, and /cluster and /metrics report the replica
// topology, lag and promotion counts:
//
//	voxserve -dataset car -shards 4 -wal-dir ./wals -replicas 2 -follower-reads
//
// With -approx queries answer through the approximate sketch candidate
// tier (DESIGN.md §12): a Hamming scan over per-object sparse binary
// sketches proposes the candidates the exact matcher refines, so results
// carry exact distances but the candidate set — and therefore the
// neighbor set — is approximate. Individual requests opt in or out with
// "approx": true/false in the body; -approx-sample N shadow-runs every
// Nth approximate k-nn against the exact engine and reports the sampled
// recall under /metrics "approx":
//
//	voxserve -snapshot db.vsnap -approx -approx-sample 100
//	curl -s localhost:8080/knn -d '{"id": 3, "k": 5, "approx": false}'
//
// Paged (VXSNAP02) snapshots — written by voxgen -stream or
// snapshot.ConvertFile — are memory-mapped and served in place rather
// than decoded to heap. The listener comes up immediately in every
// mode; until the database (or every shard) has opened and the first
// epoch view is published, GET /healthz answers 503 with status
// "warming" and the data endpoints refuse, so orchestrators can
// distinguish a live-but-warming process from a dead one.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight queries
// drain before it exits.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"github.com/voxset/voxset/internal/cluster"
	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/experiments"
	"github.com/voxset/voxset/internal/server"
	"github.com/voxset/voxset/internal/storage"
	"github.com/voxset/voxset/internal/vsdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxserve: ")
	var (
		snap    = flag.String("snapshot", "", "snapshot file to serve (written by voxgen -snapshot, voxserve -save, or vsdb.SaveFile)")
		dataset = flag.String("dataset", "", "build the database from a generated dataset instead: car | aircraft")
		n       = flag.Int("n", 0, "aircraft dataset size (default 5000; ignored for car)")
		seed    = flag.Int64("seed", 42, "generator seed for -dataset")
		covers  = flag.Int("covers", 7, "cover budget k for -dataset extraction")
		save    = flag.String("save", "", "write the built database to this snapshot file before serving")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "query slots and refinement workers (0 = VOXSET_WORKERS, else one per CPU)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		cache   = flag.Int("cache", 256, "LRU query cache entries (negative disables)")
		grace   = flag.Duration("grace", 10*time.Second, "graceful shutdown drain budget")
		wal     = flag.String("wal", "", "write-ahead log path: enables durable live updates (created if missing, replayed if present)")
		noSync  = flag.Bool("wal-nosync", false, "skip fsync after WAL appends (faster, loses the tail on power failure)")
		ckpt    = flag.Duration("checkpoint", 0, "with -wal: periodically snapshot the database and truncate the log (0 disables)")
		shards  = flag.Int("shards", 0, "serve a hash-sharded cluster of this many vsdb shards (0 = single database)")
		partial = flag.Bool("partial", false, "with -shards: degrade to flagged partial results when a shard fails instead of erroring")
		walDir  = flag.String("wal-dir", "", "with -shards: directory of per-shard write-ahead logs (created if missing, replayed if present)")
		reps    = flag.Int("replicas", 0, "with -shards and -wal-dir: followers per shard — each shard becomes a replica set of replicas+1 members with WAL shipping and failover promotion (0 disables)")
		folRead = flag.Bool("follower-reads", false, "with -replicas: serve read-only requests from caught-up followers too (round-robin; results are byte-identical)")
		maxLag  = flag.Uint64("max-lag", 0, "with -follower-reads: staleness bound in records behind the primary for a follower to serve reads (0 = fully caught-up only)")
		snapDir = flag.String("snapshot-dir", "", "sharded snapshot directory (voxgen -stream or cluster SaveDir) to serve as a cluster")
		approx  = flag.Bool("approx", false, "enable the approximate sketch candidate tier and make it the default for /knn, /knn/batch and /range (per-request \"approx\" overrides; distances stay exact)")
		approxN = flag.Int("approx-sample", 0, "with -approx: shadow-run every Nth approximate k-nn against the exact engine and report sampled recall in /metrics (0 disables)")
		meshMB  = flag.Int64("max-mesh-mb", 8, "cap on /query/mesh STL upload size in MiB (oversized bodies get 413)")
	)
	flag.Parse()
	var approxOpts *vsdb.ApproxOptions
	if *approx {
		approxOpts = &vsdb.ApproxOptions{}
	}

	var tr storage.Tracker
	if *shards > 0 || *snapDir != "" {
		serveCluster(*shards, *partial, *walDir, *snap, *snapDir, *dataset, *seed, *n, *covers, *workers,
			*addr, *timeout, *cache, *grace, *save, *wal, *ckpt, *noSync, approxOpts, *approxN,
			*reps, *folRead, *maxLag, *meshMB<<20, &tr)
		return
	}
	if *partial || *walDir != "" {
		log.Fatal("-partial and -wal-dir need -shards")
	}
	if *reps > 0 || *folRead || *maxLag > 0 {
		log.Fatal("-replicas, -follower-reads and -max-lag need -shards (and -wal-dir)")
	}
	ckptPath := *save
	if ckptPath == "" {
		ckptPath = *snap
	}
	if *ckpt > 0 && (*wal == "" || ckptPath == "") {
		log.Fatal("-checkpoint needs -wal and a snapshot path (-snapshot or -save)")
	}

	// The listener comes up before the database: readiness (the first
	// epoch view) is published from the opener goroutine, and until then
	// /healthz answers 503 "warming" while every other route refuses.
	srv, err := server.NewWarming(server.Config{
		Workers:      *workers,
		Timeout:      *timeout,
		CacheSize:    *cache,
		Approx:       *approx,
		ApproxSample: *approxN,
		MaxMeshBytes: *meshMB << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	dbc := make(chan *vsdb.DB, 1)
	go func() {
		db, err := openDB(*snap, *dataset, *seed, *n, *covers, *workers, approxOpts, &tr)
		if err != nil {
			log.Fatal(err)
		}
		dbc <- db
		if *save != "" {
			if err := db.SaveFile(*save); err != nil {
				log.Fatal(err)
			}
			log.Printf("saved snapshot to %s", *save)
		}
		if *wal != "" {
			// Attaching after the build/load replays any existing log
			// suffix, so a restart resumes exactly where the last run
			// stopped.
			before := db.Epoch()
			if err := db.AttachWAL(*wal, vsdb.WALOptions{NoSync: *noSync}); err != nil {
				log.Fatal(err)
			}
			log.Printf("write-ahead log %s attached at epoch %d (%d records replayed)",
				*wal, db.Epoch(), db.Epoch()-before)
		}
		if err := srv.Publish(server.Config{DB: db, Tracker: &tr}); err != nil {
			log.Fatal(err)
		}
		if *ckpt > 0 {
			go func() {
				tick := time.NewTicker(*ckpt)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
						before := db.WALRecords()
						if err := db.Checkpoint(ckptPath); err != nil {
							log.Printf("checkpoint: %v", err)
							continue
						}
						log.Printf("checkpointed %d objects to %s (%d log records truncated)",
							db.Len(), ckptPath, before)
					}
				}
			}()
		}
		log.Printf("serving %d objects (%d query slots, timeout %s)",
			db.Len(), srv.Workers(), *timeout)
	}()
	log.Printf("listening on %s (warming until the snapshot is open)", *addr)
	if err := srv.ListenAndServe(ctx, *addr, *grace); err != nil {
		log.Fatal(err)
	}
	select {
	case db := <-dbc:
		db.Close()
	default:
	}
	log.Print("drained, bye")
}

// serveCluster is the -shards / -snapshot-dir serving path: build or
// load a hash-sharded cluster and mount the scatter-gather coordinator
// behind the same HTTP routes (plus /cluster). Like single-database
// mode, the listener comes up first and readiness follows the open.
func serveCluster(shards int, partial bool, walDir, snap, snapDir, dataset string, seed int64, n, covers, workers int,
	addr string, timeout time.Duration, cacheSize int, grace time.Duration,
	save, wal string, ckpt time.Duration, noSync bool,
	approxOpts *vsdb.ApproxOptions, approxSample int,
	replicas int, followerReads bool, maxLag uint64, maxMeshBytes int64, tr *storage.Tracker) {
	if save != "" || wal != "" || ckpt > 0 {
		log.Fatal("-save, -wal and -checkpoint apply to single-database mode; with -shards use -wal-dir (per-shard logs)")
	}
	if replicas > 0 && walDir == "" {
		log.Fatal("-replicas needs -wal-dir: the per-shard log is the durable copy failover recovers from")
	}
	ccfg := cluster.Config{
		Shards:        shards,
		Partial:       partial,
		WALDir:        walDir,
		WALNoSync:     noSync,
		Workers:       workers,
		Tracker:       tr,
		Approx:        approxOpts,
		Replicas:      replicas,
		FollowerReads: followerReads,
		MaxLag:        maxLag,
	}
	srv, err := server.NewWarming(server.Config{
		Workers:      workers,
		Timeout:      timeout,
		CacheSize:    cacheSize,
		Approx:       approxOpts != nil,
		ApproxSample: approxSample,
		MaxMeshBytes: maxMeshBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	cc := make(chan *cluster.DB, 1)
	go func() {
		var c *cluster.DB
		var err error
		start := time.Now()
		switch {
		case snapDir != "" && (snap != "" || dataset != ""):
			log.Fatal("give -snapshot-dir, -snapshot or -dataset, not a combination")
		case snap != "" && dataset != "":
			log.Fatal("give -snapshot or -dataset, not both")
		case snapDir != "":
			// Shards open concurrently, paged (VXSNAP02) shard files by
			// mmap; the manifest supplies the geometry.
			c, err = cluster.LoadDir(snapDir, ccfg)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("opened %s: %d objects across %d shards in %s",
				snapDir, c.Len(), c.N(), time.Since(start).Round(time.Millisecond))
		case snap != "":
			c, err = cluster.FromSnapshotFile(snap, ccfg)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("scattered %s across %d shards: %d objects in %s",
				snap, shards, c.Len(), time.Since(start).Round(time.Millisecond))
		case dataset == "":
			log.Fatal("either -snapshot-dir, -snapshot or -dataset is required")
		default:
			d, perr := experiments.ParseDataset(dataset)
			if perr != nil {
				log.Fatal(perr)
			}
			cfg := core.DefaultConfig()
			cfg.Covers = covers
			cfg.Workers = workers
			c, err = experiments.BuildClusterDB(d, seed, n, cfg, ccfg, workers, tr)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("built %s dataset across %d shards: %d objects in %s",
				dataset, shards, c.Len(), time.Since(start).Round(time.Second))
		}
		cc <- c
		if walDir != "" {
			log.Printf("per-shard write-ahead logs in %s (cluster epoch %d)", walDir, c.Epoch())
		}
		if replicas > 0 {
			log.Printf("replica sets: %d followers per shard (follower reads %v, max lag %d records)",
				replicas, followerReads, maxLag)
		}
		if err := srv.Publish(server.Config{Cluster: c, Tracker: tr}); err != nil {
			log.Fatal(err)
		}
		mode := "strict"
		if partial {
			mode = "partial"
		}
		log.Printf("serving %d objects (%d shards, %s degradation, %d query slots, timeout %s)",
			c.Len(), c.N(), mode, srv.Workers(), timeout)
	}()
	log.Printf("listening on %s (warming until the shards are open)", addr)
	if err := srv.ListenAndServe(ctx, addr, grace); err != nil {
		log.Fatal(err)
	}
	select {
	case c := <-cc:
		c.Close()
	default:
	}
	log.Print("drained, bye")
}

// openDB loads a snapshot or builds a dataset from the CSG generators.
func openDB(snap, dataset string, seed int64, n, covers, workers int, approx *vsdb.ApproxOptions, tr *storage.Tracker) (*vsdb.DB, error) {
	switch {
	case snap != "" && dataset != "":
		log.Fatal("give -snapshot or -dataset, not both")
	case snap != "":
		start := time.Now()
		db, err := vsdb.OpenFile(snap, vsdb.LoadOptions{Tracker: tr, Workers: workers, Approx: approx})
		if err != nil {
			return nil, err
		}
		how := "decoded to heap"
		if db.Mapped() {
			how = "memory-mapped, served in place"
		}
		log.Printf("opened %s: %d objects in %s (%s; tracked I/O %s)",
			snap, db.Len(), time.Since(start).Round(time.Millisecond), how,
			tr.IOTime(storage.PaperCostModel).Round(time.Millisecond))
		return db, nil
	case dataset == "":
		log.Fatal("either -snapshot or -dataset is required")
	}
	d, err := experiments.ParseDataset(dataset)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cfg := core.DefaultConfig()
	cfg.Covers = covers
	cfg.Workers = workers
	db, err := experiments.BuildSnapshotDBApprox(d, seed, n, cfg, workers, tr, approx)
	if err != nil {
		return nil, err
	}
	log.Printf("built %s dataset: %d objects in %s", dataset, db.Len(), time.Since(start).Round(time.Second))
	return db, nil
}
