// Command voxknn reproduces paper Table 2: the cost of a batch of 10-nn
// queries on the Aircraft dataset under (a) the one-vector cover sequence
// model in an X-tree, (b) the vector set model with the extended-centroid
// filter and (c) the vector set model by sequential scan. CPU time is
// measured; I/O time is simulated with the paper's cost model (8 ms per
// page access, 200 ns per byte).
//
// Usage:
//
//	voxknn -n 5000 -queries 100 -k 10
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("voxknn: ")
	var (
		n       = flag.Int("n", 5000, "aircraft dataset size (paper: 5000)")
		queries = flag.Int("queries", 100, "number of k-nn queries (paper: 100)")
		k       = flag.Int("k", 10, "neighbors per query (paper: 10)")
		covers  = flag.Int("covers", 7, "cover budget (paper: 7)")
		seed    = flag.Int64("seed", 42, "dataset seed")
		rCover  = flag.Int("rcover", 15, "cover voxel resolution (paper: 15)")
		dataset = flag.String("dataset", "aircraft", "dataset: car | aircraft")
		ranges  = flag.String("ranges", "", "comma-separated ε levels for a range-query filter sweep (optional)")
	)
	flag.Parse()

	ds := experiments.Aircraft
	if *dataset == "car" {
		ds = experiments.Car
	}
	parts := ds.Parts(*seed, *n)
	log.Printf("extracting %d parts (k = %d covers, r = %d)…", len(parts), *covers, *rCover)
	cfg := core.Config{RHist: 12, RCover: *rCover, P: 3, KernelRadius: 2, Covers: *covers}
	e, err := experiments.BuildEngine(cfg, parts)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("running %d × %d-nn queries…", *queries, *k)
	rows := experiments.Table2(e, experiments.Table2Config{Queries: *queries, K: *k})
	fmt.Printf("\nTable 2 — %d sample %d-nn queries on %d objects\n", *queries, *k, len(parts))
	fmt.Print(experiments.FormatTable2(rows))

	ss := experiments.MeasureStorage(e)
	fmt.Printf("\nstorage (§4.1): vector sets %d bytes (mean cardinality %.2f) vs "+
		"one-vectors %d bytes → %.1f%% saved\n",
		ss.VectorSetBytes, ss.MeanCardinality, ss.OneVectorBytes, 100*ss.Savings())

	st := experiments.MeasureFilter(e, *queries, *k)
	fmt.Printf("\nfilter statistics: %.1f refinements per query of %d objects "+
		"(selectivity %.1f%%), lower-bound tightness %.3f\n",
		st.MeanRefinements, st.Objects,
		100*st.MeanRefinements/float64(st.Objects), st.MeanTightness)

	if *ranges != "" {
		var epsList []float64
		for _, s := range strings.Split(*ranges, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatalf("bad ε value %q", s)
			}
			epsList = append(epsList, v)
		}
		fmt.Printf("\nε-range filter sweep (%d queries per level)\n", *queries)
		fmt.Print(experiments.FormatRange(experiments.RangeExperiment(e, epsList, *queries)))
	}
}
