# Tier-1 gate: `make check` is the canonical pre-merge verification —
# vet, build, race-enabled tests, and a short benchmark smoke run.
GO ?= go

.PHONY: check vet build test race check-race check-cluster check-approx check-replica check-degraded bench bench-smoke bench-voxel bench-cluster bench-json bench-compare fuzz-smoke

check: vet build check-race check-cluster check-approx check-replica check-degraded fuzz-smoke bench-smoke bench-voxel

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick race gate: -short skips the full-dataset reproductions (race
# instrumentation slows them 10-20×), keeping the loop about concurrency.
race:
	$(GO) test -race -short -timeout 30m ./...

# Full race gate (~4-5 min): every test — including the snapshot
# round-trips, the voxserve shutdown hammer and the experiment suites —
# under the race detector. This is what `check` runs pre-merge.
check-race:
	$(GO) test -race -timeout 60m ./...

# Sharded-cluster gate: the cross-shard parity oracle, the chaos suite
# (fault injection, kill/reopen, stall timeouts), the batch-query
# oracles and the coordinator's HTTP layer, all under the race detector.
check-cluster:
	$(GO) test -race -timeout 30m -run 'Parity|Chaos|Merge|Cluster|Shard|Batch' ./internal/cluster/... ./internal/server/... ./internal/experiments/

# Approximate-tier gate: the exact-oracle recall harness (recall@k
# floors, ε-recall, approx-off byte-identical transcripts, worker
# invariance) plus the approx-mode suites of the engine, snapshot codec
# and HTTP server, all under the race detector.
check-approx:
	$(GO) test -race -timeout 30m ./internal/recall/ ./internal/index/sketch/
	$(GO) test -race -timeout 30m -run 'Approx|Sketch' ./internal/vsdb/ ./internal/snapshot/ ./internal/server/ ./internal/cluster/ ./internal/index/filter/

# Replication gate: the ship-frame codec and follower replay units, the
# failover chaos suite, the replica-parity oracle matrix, the WAL cursor
# and strict-replay layers, and the replicated HTTP surface — all under
# the race detector (-short keeps the parity matrix at its CI size).
check-replica:
	$(GO) test -race -timeout 30m ./internal/replica/
	$(GO) test -race -short -timeout 30m -run 'Replica|Failover|Promot|Fenc|Rejoin|Chaos|Cursor|Replay|ApplyRecord' ./internal/cluster/ ./internal/server/ ./internal/vsdb/ ./internal/wal/

# Degraded-query gate: the scan-to-CAD oracle (cropped rescans must
# retrieve their true part under partial matching, identically at every
# shard × worker combination), the degrade generators' determinism
# contracts, the partial-matching property suite, and the query-by-
# upload HTTP surface — all under the race detector.
check-degraded:
	$(GO) test -race -timeout 30m -run 'Degraded|Partial' ./internal/recall/ ./internal/dist/ ./internal/vsdb/ ./internal/cluster/
	$(GO) test -race -timeout 30m ./internal/degrade/ ./internal/meshquery/
	$(GO) test -race -timeout 30m -run 'QueryMesh|Malformed|SetQuery' ./internal/server/

# Fuzz smoke: every decoder fuzzer for a few seconds each, on top of
# the checked-in seed corpora. Catches framing/CRC regressions in the
# snapshot, WAL, STL and vector-set codecs without a long fuzz session —
# plus the scatter-gather merge's identity with sort-and-truncate.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzSTLParse -fuzztime 5s ./internal/mesh/
	$(GO) test -run xxx -fuzz FuzzQueryMesh -fuzztime 5s ./internal/server/
	$(GO) test -run xxx -fuzz FuzzReadFrom -fuzztime 5s ./internal/vectorset/
	$(GO) test -run xxx -fuzz FuzzSnapshotDecode -fuzztime 5s ./internal/snapshot/
	$(GO) test -run xxx -fuzz FuzzWALReplay -fuzztime 5s ./internal/wal/
	$(GO) test -run xxx -fuzz FuzzClusterMerge -fuzztime 5s ./internal/cluster/
	$(GO) test -run xxx -fuzz FuzzSketchDecode -fuzztime 5s ./internal/index/sketch/
	$(GO) test -run xxx -fuzz FuzzReplicaStreamDecode -fuzztime 5s ./internal/replica/

# Quick benchmark smoke: the zero-allocation matching kernel, the
# parallel-vs-sequential scaling pairs, and a reduced end-to-end
# bench-json pass (ingest, KNN latency, allocation counters, batch
# speedup, and the mmap serving path: VXSNAP02 cold open + aliasing
# reads + mapped k-nn) whose JSON goes to a scratch path.
bench-smoke:
	$(GO) test -run xxx -bench 'Ablation_Matching(Hungarian|Pooled)K7' -benchtime 200x .
	$(GO) run ./cmd/benchjson -quick -out /tmp/voxset-bench-smoke.json

# Full end-to-end benchmark harness: writes the committed BENCH_<pr>.json
# (ingest ms/object, KNN p50/p99, allocs/op, batch-vs-sequential
# throughput). Usage: make bench-json PR=6 [BASELINE=old.json]
PR ?= 10
bench-json:
	$(GO) run ./cmd/benchjson -pr $(PR) $(if $(BASELINE),-baseline $(BASELINE)) -out BENCH_$(PR).json

# Perf-trajectory gate: diff the committed BENCH_$(PR).json against the
# latest prior BENCH_*.json and fail on a >20% k-nn p50 regression.
# Usage: make bench-compare [PR=7] [OLD=BENCH_5.json]
bench-compare:
	$(GO) run ./cmd/benchcompare -new BENCH_$(PR).json $(if $(OLD),-old $(OLD))

# Voxel-kernel and ingest smoke: word-parallel morphology vs the
# per-voxel references, voxelization, and one object extraction pass.
bench-voxel:
	$(GO) test -run xxx -bench 'Surface|FillCavities|Components|Voxelize' -benchtime 20x ./internal/voxel/
	$(GO) test -run xxx -bench 'IngestObject' -benchtime 5x .

# Shard-scaling benchmark: scatter-gather k-nn over a fixed corpus at
# 1/2/4/8 shards (EXPERIMENTS.md records the numbers).
bench-cluster:
	$(GO) test -run xxx -bench 'ClusterKNN' -benchtime 50x ./internal/cluster/

# Full benchmark sweep (slow; reproduces every table/figure metric).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...
