// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark prints/records the quantity the paper
// reports as custom metrics, so `go test -bench=. -benchmem` doubles as
// the reproduction harness (EXPERIMENTS.md records a full-scale run via
// the cmd/ tools).
//
//	BenchmarkTable1_*   — permutation rate per cover budget (Table 1)
//	BenchmarkTable2_*   — 10-nn query cost per access method (Table 2)
//	BenchmarkFigure6_*  — OPTICS under the volume / solid-angle models
//	BenchmarkFigure7_*  — OPTICS under the cover sequence model
//	BenchmarkFigure8_*  — OPTICS under min. Euclidean distance under permutation
//	BenchmarkFigure9_*  — OPTICS under the vector set model (3 and 7 covers)
//	BenchmarkFigure10_* — ε-cut cluster extraction + class composition
//	BenchmarkAblation_* — design-choice microbenchmarks (DESIGN.md §5)
package voxset

import (
	"math"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"github.com/voxset/voxset/internal/cadgen"
	"github.com/voxset/voxset/internal/core"
	"github.com/voxset/voxset/internal/cover"
	"github.com/voxset/voxset/internal/dist"
	"github.com/voxset/voxset/internal/experiments"
	"github.com/voxset/voxset/internal/index/filter"
	"github.com/voxset/voxset/internal/normalize"
	"github.com/voxset/voxset/internal/optics"
	"github.com/voxset/voxset/internal/parallel"
	"github.com/voxset/voxset/internal/voxel"
)

// Shared, lazily built engines so benchmark setup cost is paid once.
var (
	benchOnce  sync.Once
	carEngine  *core.Engine // car dataset, paper parameters (r=15, k=7)
	airEngine  *core.Engine // aircraft subset (bench scale), paper parameters
	carParts   []cadgen.Part
	airParts   []cadgen.Part
	benchGrids []*voxel.Grid
	airDB      *Database    // facade database over airParts
	airFigEng  *core.Engine // smaller aircraft engine for invariant OPTICS figures
)

const (
	benchAircraftN    = 800 // bench-scale; cmd/voxknn runs the full 5000
	benchAircraftFigN = 400 // invariant OPTICS figures (48 symmetries) are O(n²·48)
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.Config{RHist: 30, RCover: 15, P: 5, KernelRadius: 3, Covers: 7}
		carParts = experiments.Car.Parts(42, 0)
		airParts = experiments.Aircraft.Parts(42, benchAircraftN)
		var err error
		carEngine, err = experiments.BuildEngine(cfg, carParts)
		if err != nil {
			panic(err)
		}
		airEngine, err = experiments.BuildEngine(cfg, airParts)
		if err != nil {
			panic(err)
		}
		for _, p := range carParts[:32] {
			g, _ := normalize.VoxelizeNormalized(p.Solid, 15)
			benchGrids = append(benchGrids, g)
		}
		airDB = MustOpen(cfg)
		airDB.AddParts(airParts)
		// Pre-trigger the lazy index build so query benches measure
		// queries, not construction.
		airDB.KNN(airDB.Object(0), 1, Query{Model: ModelVectorSet})
		airFigEng, err = experiments.BuildEngine(cfg, airParts[:benchAircraftFigN])
		if err != nil {
			panic(err)
		}
	})
}

// ---------------------------------------------------------------------------
// Table 1 — percentage of proper permutations per cover budget

func benchmarkTable1(b *testing.B, k int) {
	benchSetup(b)
	// Re-extract with budget k at bench scale (subset for small k cost).
	cfg := core.Config{RHist: 12, RCover: 15, P: 3, KernelRadius: 2, Covers: k}
	e, err := experiments.BuildEngine(cfg, carParts[:80])
	if err != nil {
		b.Fatal(err)
	}
	objs := e.Objects()
	b.ResetTimer()
	var calls, proper int64
	for i := 0; i < b.N; i++ {
		a := objs[i%len(objs)]
		c := objs[(i*13+7)%len(objs)]
		_, p := core.MatchingStats(a, c)
		calls++
		if p {
			proper++
		}
	}
	b.ReportMetric(100*float64(proper)/float64(calls), "%proper-perms")
}

func BenchmarkTable1_Covers3(b *testing.B) { benchmarkTable1(b, 3) }
func BenchmarkTable1_Covers5(b *testing.B) { benchmarkTable1(b, 5) }
func BenchmarkTable1_Covers7(b *testing.B) { benchmarkTable1(b, 7) }
func BenchmarkTable1_Covers9(b *testing.B) { benchmarkTable1(b, 9) }

// ---------------------------------------------------------------------------
// Table 2 — 10-nn query cost per access method (one iteration = one
// 10-nn query over the aircraft dataset)

func BenchmarkTable2_OneVectorXTree(b *testing.B) {
	benchSetup(b)
	db := airDB
	b.ResetTimer()
	var pages int64
	for i := 0; i < b.N; i++ {
		db.KNN(db.Object(i%db.Len()), 10, Query{Model: ModelCoverSeq})
		pages += db.LastIO().PageAccesses
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

func BenchmarkTable2_VectorSetFilter(b *testing.B) {
	benchSetup(b)
	db := airDB
	b.ResetTimer()
	var pages int64
	for i := 0; i < b.N; i++ {
		db.KNN(db.Object(i%db.Len()), 10, Query{Model: ModelVectorSet, Access: AccessFilter})
		pages += db.LastIO().PageAccesses
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
	b.ReportMetric(float64(db.FilterRefinements())/float64(b.N), "refinements/query")
}

func BenchmarkTable2_VectorSetScan(b *testing.B) {
	benchSetup(b)
	db := airDB
	b.ResetTimer()
	var pages int64
	for i := 0; i < b.N; i++ {
		db.KNN(db.Object(i%db.Len()), 10, Query{Model: ModelVectorSet, Access: AccessScan})
		pages += db.LastIO().PageAccesses
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

// ---------------------------------------------------------------------------
// Figures 6–9 — one iteration = one full OPTICS run; the achieved
// adjusted Rand index and purity against the generator families are
// reported as metrics (the quantitative stand-in for plot structure).

func benchmarkFigure(b *testing.B, e *core.Engine, parts []cadgen.Part, m core.Model) {
	// The paper evaluates with translation, scaling, 90°-rotation and
	// reflection invariance throughout (§3.2).
	truth := cadgen.Labels(parts[:e.Len()])
	var lastARI, lastPurity float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ord := optics.RunRows(e.Len(), e.RowFunc(m, core.InvRotoReflection), math.Inf(1), 5)
		lastARI, lastPurity = bestCut(ord, truth)
	}
	b.ReportMetric(lastARI, "ARI")
	b.ReportMetric(lastPurity, "purity")
}

func bestCut(ord optics.Result, truth []int) (ari, purity float64) {
	maxFinite := 0.0
	for _, v := range ord.Reach {
		if !math.IsInf(v, 1) && v > maxFinite {
			maxFinite = v
		}
	}
	for f := 0.1; f <= 0.9; f += 0.1 {
		labels := optics.EpsCut(ord, maxFinite*f)
		if optics.NumClusters(labels) < 2 {
			continue
		}
		if a := optics.AdjustedRandIndex(labels, truth); a > ari {
			ari = a
			purity = optics.Purity(labels, truth)
		}
	}
	return ari, purity
}

func BenchmarkFigure6_VolumeCar(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, carEngine, carParts, core.ModelVolume)
}

func BenchmarkFigure6_SolidAngleCar(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, carEngine, carParts, core.ModelSolidAngle)
}

func BenchmarkFigure6_VolumeAircraft(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, airFigEng, airParts, core.ModelVolume)
}

func BenchmarkFigure6_SolidAngleAircraft(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, airFigEng, airParts, core.ModelSolidAngle)
}

func BenchmarkFigure7_CoverSeqCar(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, carEngine, carParts, core.ModelCoverSeq)
}

func BenchmarkFigure7_CoverSeqAircraft(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, airFigEng, airParts, core.ModelCoverSeq)
}

func BenchmarkFigure8_PermSeqCar(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, carEngine, carParts, core.ModelCoverSeqPerm)
}

func BenchmarkFigure9_VectorSetCar7(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, carEngine, carParts, core.ModelVectorSet)
}

func BenchmarkFigure9_VectorSetCar3(b *testing.B) {
	benchSetup(b)
	cfg := carEngine.Config()
	cfg.Covers = 3
	e, err := experiments.BuildEngine(cfg, carParts)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkFigure(b, e, carParts, core.ModelVectorSet)
}

func BenchmarkFigure9_VectorSetAircraft7(b *testing.B) {
	benchSetup(b)
	benchmarkFigure(b, airFigEng, airParts, core.ModelVectorSet)
}

func BenchmarkFigure10_ClusterExtraction(b *testing.B) {
	benchSetup(b)
	ord := optics.Run(carEngine.Len(), carEngine.DistFunc(core.ModelVectorSet, core.InvNone),
		math.Inf(1), 5)
	maxFinite := 0.0
	for _, v := range ord.Reach {
		if !math.IsInf(v, 1) && v > maxFinite {
			maxFinite = v
		}
	}
	truth := cadgen.Labels(carParts)
	b.ResetTimer()
	var purity float64
	for i := 0; i < b.N; i++ {
		labels := optics.EpsCut(ord, maxFinite*0.6)
		purity = optics.Purity(labels, truth)
	}
	b.ReportMetric(purity, "purity")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5): the design choices behind the headline
// numbers.

// Hungarian O(k³) matching vs brute-force k! permutation enumeration —
// the justification for the vector set model's practicality. Runs through
// the pooled workspace; allocs/op must be 0 in steady state.
func BenchmarkAblation_MatchingHungarianK7(b *testing.B) {
	benchSetup(b)
	objs := carEngine.Objects()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := objs[i%len(objs)]
		c := objs[(i*31+11)%len(objs)]
		dist.MatchingDistance(a.VSet, c.VSet, dist.L2, dist.WeightNorm)
	}
}

// The same matchings through a caller-held workspace — the zero-pool
// variant of the kernel, isolating the sync.Pool round-trip cost.
func BenchmarkAblation_MatchingPooledK7(b *testing.B) {
	benchSetup(b)
	objs := carEngine.Objects()
	ws := dist.GetWorkspace()
	defer dist.PutWorkspace(ws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := objs[i%len(objs)]
		c := objs[(i*31+11)%len(objs)]
		ws.MatchingDistance(a.VSet, c.VSet, dist.L2, dist.WeightNorm)
	}
}

func BenchmarkAblation_MatchingBruteForceK7(b *testing.B) {
	benchSetup(b)
	objs := carEngine.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := objs[i%len(objs)]
		c := objs[(i*31+11)%len(objs)]
		dist.MinEuclideanPermBrute(a.VSet, c.VSet)
	}
}

// Greedy cover extraction — the dominant preprocessing cost.
func BenchmarkAblation_GreedyCoverR15K7(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		cover.Greedy(benchGrids[i%len(benchGrids)], 7)
	}
}

// Voxelization of a CAD part at the paper's two resolutions.
func BenchmarkAblation_VoxelizeR15(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		normalize.VoxelizeNormalized(carParts[i%len(carParts)].Solid, 15)
	}
}

func BenchmarkAblation_VoxelizeR30(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		normalize.VoxelizeNormalized(carParts[i%len(carParts)].Solid, 30)
	}
}

// The centroid filter's lower bound vs the exact matching distance.
func BenchmarkAblation_CentroidLowerBound(b *testing.B) {
	benchSetup(b)
	st := experiments.MeasureFilter(carEngine, 1, 10)
	b.ReportMetric(st.MeanTightness, "tightness")
	objs := carEngine.Objects()
	cfg := carEngine.Config()
	omega := make([]float64, 6)
	cents := make([][]float64, len(objs))
	for i, o := range objs {
		cents[i] = centroidOf(o.VSet, cfg.Covers, omega)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := cents[i%len(cents)]
		c := cents[(i*17+3)%len(cents)]
		_ = dist.L2(a, c)
	}
}

func centroidOf(set [][]float64, k int, omega []float64) []float64 {
	c := make([]float64, len(omega))
	for _, v := range set {
		for i := range c {
			c[i] += v[i]
		}
	}
	pad := float64(k - len(set))
	for i := range c {
		c[i] = (c[i] + pad*omega[i]) / float64(k)
	}
	return c
}

// Full 48-symmetry invariant distance vs plain distance.
func BenchmarkAblation_InvariantDistance48(b *testing.B) {
	benchSetup(b)
	objs := carEngine.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		carEngine.Distance(core.ModelVectorSet, core.InvRotoReflection,
			objs[i%len(objs)], objs[(i*7+5)%len(objs)])
	}
}

// Greedy vs exact cover search (the paper's two §3.3.3 algorithm options)
// on a tiny grid where exact search is feasible.
func BenchmarkAblation_GreedyCoverR4K2(b *testing.B) {
	g := voxel.NewCube(4)
	g.SetCuboid(0, 1, 0, 3, 2, 0, true)
	g.SetCuboid(1, 0, 0, 2, 3, 0, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover.Greedy(g, 2)
	}
}

func BenchmarkAblation_ExactCoverR4K2(b *testing.B) {
	g := voxel.NewCube(4)
	g.SetCuboid(0, 1, 0, 3, 2, 0, true)
	g.SetCuboid(1, 0, 0, 2, 3, 0, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover.Exact(g, 2)
	}
}

// ---------------------------------------------------------------------------
// Scaling: the parallel query/OPTICS engine vs the sequential baseline.
// One iteration = one 10-nn query (k-nn pair) or one full OPTICS run
// (OPTICS pair); results are identical between the two engines by
// construction, so the pairs measure pure speedup.

func benchmarkScalingKNN(b *testing.B, workers int) {
	benchSetup(b)
	objs := airEngine.Objects()
	ix := filter.New(filter.Config{K: 7, Dim: 6, Workers: workers})
	for _, o := range objs {
		ix.Add(o.VSet, o.ID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.KNN(objs[(i*37)%len(objs)].VSet, 10)
	}
}

func BenchmarkScaling_KNNSequential(b *testing.B) { benchmarkScalingKNN(b, 1) }
func BenchmarkScaling_KNNParallel(b *testing.B)   { benchmarkScalingKNN(b, runtime.GOMAXPROCS(0)) }

func benchmarkScalingOPTICS(b *testing.B, workers int) {
	benchSetup(b)
	objs := carEngine.Objects()
	// Concurrency-safe pairwise distance through the pooled workspace.
	distFn := func(i, j int) float64 {
		return dist.MatchingDistance(objs[i].VSet, objs[j].VSet, dist.L2, dist.WeightNorm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optics.RunParallel(len(objs), distFn, math.Inf(1), 5, workers)
	}
}

func BenchmarkScaling_OPTICSSequential(b *testing.B) { benchmarkScalingOPTICS(b, 1) }
func BenchmarkScaling_OPTICSParallel(b *testing.B) {
	benchmarkScalingOPTICS(b, runtime.GOMAXPROCS(0))
}

// ---------------------------------------------------------------------------
// Ingestion: the full per-object extraction pipeline (voxelize at both
// resolutions → surface/interior classification → histogram features →
// greedy covers), sequential vs the VOXSET_WORKERS-parallel substrate.
// Output objects are bit-identical between the two by construction.

func benchmarkIngestObject(b *testing.B, workers int) {
	b.Setenv(parallel.EnvWorkers, strconv.Itoa(workers))
	cfg := core.Config{RHist: 30, RCover: 15, P: 5, KernelRadius: 3, Covers: 7}
	e, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	parts := experiments.Car.Parts(42, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(parts[i%len(parts)])
	}
}

func BenchmarkIngestObject_Sequential(b *testing.B) { benchmarkIngestObject(b, 1) }
func BenchmarkIngestObject_Parallel(b *testing.B) {
	benchmarkIngestObject(b, runtime.GOMAXPROCS(0))
}

// Dataset-scale ingest: cadgen → extraction on the worker pool → bulk
// vsdb insert, via the experiments BuildParallel path.
func benchmarkIngestDataset(b *testing.B, workers int) {
	cfg := core.Config{RHist: 30, RCover: 15, P: 5, KernelRadius: 3, Covers: 7}
	parts := experiments.Car.Parts(42, 0)[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := experiments.BuildParallel(cfg, parts, workers)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.BuildVectorSetDB(e, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestDataset_Sequential(b *testing.B) { benchmarkIngestDataset(b, 1) }
func BenchmarkIngestDataset_Parallel(b *testing.B) {
	benchmarkIngestDataset(b, runtime.GOMAXPROCS(0))
}
